"""Streaming flow sources: bit-identity, pickling, memory flatness.

The headline gates:

* ``list(PoissonFlowStream(...)) == poisson_flows(...)`` float for
  float — the stream is the generator, restated as an iterator;
* a *run* over a streamed scenario is bit-identical to the same run
  over the materialized list, across schemes and fabrics, including a
  kill/resume from a checkpoint taken while the stream was only partly
  consumed;
* draining a stream holds O(1) memory no matter how many flows pass
  through it.
"""

import pickle
import tracemalloc

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.experiments.runner as runner_mod
from repro.core.ppt import Ppt
from repro.experiments.parallel import GridTask, run_grid
from repro.experiments.runner import Scenario, run
from repro.experiments.scenarios import (
    HOMA_RTT_BYTES_SIM,
    all_to_all_scenario,
    sim_fabric,
    soak_scenario,
    star_fabric,
)
from repro.resilience.checkpoint import load_checkpoint, save_checkpoint
from repro.transport.dctcp import Dctcp
from repro.transport.homa import Homa
from repro.units import gbps
from repro.workloads import (
    WORKLOADS,
    ClosedLoopStream,
    ConstantShape,
    DiurnalShape,
    MaterializedStream,
    MergedStream,
    OnOffShape,
    PoissonFlowStream,
    TenantClass,
    flow_stream,
    parse_load_shape,
    parse_tenant_mix,
    poisson_flows,
    tenant_mix_stream,
)
from repro.workloads.distributions import MEMCACHED_W1, WEB_SEARCH
from repro.workloads.patterns import all_to_all, incast


def flow_tuples(flows):
    return [(f.flow_id, f.src, f.dst, f.size, f.start_time) for f in flows]


def fct_fingerprint(result):
    return [(f.flow_id, f.completed, repr(f.fct)) for f in result.flows]


# ---------------------------------------------------------------------------
# stream == generator
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("seed,n_flows,n_senders,cap", [
    (1, 50, 8, None),
    (7, 200, 8, 2_000_000),
    (42, 17, 1, 150_000),
])
def test_stream_equals_generator_bit_for_bit(seed, n_flows, n_senders, cap):
    kwargs = dict(load=0.5, link_rate=gbps(40), n_flows=n_flows,
                  n_senders=n_senders, seed=seed, size_cap=cap)
    ref = poisson_flows(all_to_all(range(8)), WEB_SEARCH, **kwargs)
    got = list(PoissonFlowStream(all_to_all(range(8)), WEB_SEARCH, **kwargs))
    assert flow_tuples(got) == flow_tuples(ref)


def test_constant_shape_preserves_bit_identity():
    kwargs = dict(load=0.4, link_rate=gbps(10), n_flows=80, n_senders=4,
                  seed=3, size_cap=500_000)
    ref = poisson_flows(all_to_all(range(4)), WEB_SEARCH, **kwargs)
    got = list(PoissonFlowStream(all_to_all(range(4)), WEB_SEARCH,
                                 shape=ConstantShape(), **kwargs))
    assert flow_tuples(got) == flow_tuples(ref)


def test_materialize_respects_limit_and_unbounded_guard():
    stream = PoissonFlowStream(all_to_all(range(4)), WEB_SEARCH, load=0.5,
                               link_rate=gbps(10), n_flows=None, seed=1,
                               n_senders=4)
    head = stream.materialize(limit=25)
    assert len(head) == 25
    assert [f.flow_id for f in head] == list(range(25))
    with pytest.raises(ValueError):
        stream.materialize()


def test_stream_rejects_self_pair_pattern():
    stream = PoissonFlowStream(lambda rng: (2, 2), WEB_SEARCH, load=0.5,
                               link_rate=gbps(10), n_flows=5, seed=1)
    with pytest.raises(ValueError, match="src == dst"):
        next(stream)


def test_materialized_stream_adapter():
    flows = poisson_flows(all_to_all(range(4)), WEB_SEARCH, load=0.5,
                          link_rate=gbps(10), n_flows=10, n_senders=4)
    stream = MaterializedStream(flows)
    assert stream.n_flows == 10
    assert flow_tuples(stream.materialize()) == flow_tuples(flows)
    with pytest.raises(ValueError):
        MaterializedStream(list(reversed(flows)))


# ---------------------------------------------------------------------------
# pickling: the stream's cursor and RNG survive mid-iteration
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("make", [
    lambda: PoissonFlowStream(all_to_all(range(8)), WEB_SEARCH, load=0.5,
                              link_rate=gbps(40), n_flows=60, n_senders=8,
                              seed=9, shape=DiurnalShape(period=0.01)),
    lambda: ClosedLoopStream(all_to_all(range(8)), WEB_SEARCH, load=0.5,
                             link_rate=gbps(40), n_flows=60, n_senders=8,
                             seed=9, n_users=4),
    lambda: tenant_mix_stream(
        [TenantClass("web-search", WEB_SEARCH, 3.0),
         TenantClass("memcached-w1", MEMCACHED_W1, 1.0)],
        all_to_all(range(8)), load=0.5, link_rate=gbps(40), n_flows=60,
        n_senders=8, seed=9),
])
def test_pickle_mid_stream_continues_exact_sequence(make):
    ref = make().materialize()
    stream = make()
    head = [next(stream) for _ in range(23)]
    clone = pickle.loads(pickle.dumps(stream))
    tail_orig = stream.materialize()
    tail_clone = clone.materialize()
    assert flow_tuples(tail_clone) == flow_tuples(tail_orig)
    assert flow_tuples(head + tail_clone) == flow_tuples(ref)


# ---------------------------------------------------------------------------
# streamed runs are bit-identical to materialized runs
# ---------------------------------------------------------------------------


SCHEMES = {
    "dctcp": Dctcp,
    "ppt": Ppt,
    "homa": lambda: Homa(rtt_bytes=HOMA_RTT_BYTES_SIM),
}
FABRICS = {
    "star": lambda: star_fabric(6),
    "leaf-spine": lambda: sim_fabric(n_leaf=2, n_spine=2, hosts_per_leaf=3),
}


@pytest.mark.parametrize("scheme", sorted(SCHEMES))
@pytest.mark.parametrize("fabric", sorted(FABRICS))
def test_streamed_run_bit_identical(scheme, fabric):
    def scenario(name, stream):
        return all_to_all_scenario(name, WEB_SEARCH, n_flows=40,
                                   max_time=2.0, size_cap=150_000,
                                   fabric=FABRICS[fabric](), stream=stream)

    materialized = run(SCHEMES[scheme](), scenario("m", False))
    streamed = run(SCHEMES[scheme](), scenario("s", True))
    assert fct_fingerprint(streamed) == fct_fingerprint(materialized)
    assert streamed.wall_events == materialized.wall_events
    assert streamed.health == materialized.health


def test_streamed_run_bit_identical_with_mix_and_shape():
    mix = [TenantClass("web-search", WEB_SEARCH, 3.0),
           TenantClass("memcached-w1", MEMCACHED_W1, 1.0)]

    def scenario(name, stream):
        return all_to_all_scenario(name, WEB_SEARCH, n_flows=40,
                                   max_time=2.0, size_cap=150_000,
                                   tenants=mix,
                                   load_shape=DiurnalShape(period=1.0),
                                   stream=stream)

    a = run(Dctcp(), scenario("m", False))
    b = run(Dctcp(), scenario("s", True))
    assert fct_fingerprint(a) == fct_fingerprint(b)
    assert a.wall_events == b.wall_events


def test_unbounded_stream_run_stops_at_max_time():
    fabric = star_fabric(4)

    def build_flows(topo):
        return PoissonFlowStream(all_to_all(topo.host_ids()), WEB_SEARCH,
                                 load=0.3, link_rate=topo.edge_rate,
                                 n_flows=None, n_senders=topo.n_hosts,
                                 seed=5, size_cap=150_000)

    result = run(Dctcp(), Scenario("endless", fabric, build_flows,
                                   max_time=0.005))
    # flow target is unknowable up front; health reports what arrived
    assert result.health.n_flows == len(result.flows)
    assert result.health.n_flows > 0
    assert not result.health.stalled


def test_mid_stream_checkpoint_resume_bit_identical(tmp_path, monkeypatch):
    """Kill a streamed soak at its *first* snapshot — taken while the
    stream has emitted only a handful of its flows — and resume: the
    half-consumed stream rides inside the checkpoint and the finished
    run is bit-identical to one that never stopped."""
    def scenario(name):
        return soak_scenario(name, horizon=60.0, stream=True,
                             fault_period=None)

    straight = run(Dctcp(), scenario("straight"))
    path = tmp_path / "midstream.ckpt"
    taken = []

    def first_only(state, p):
        if not taken:
            taken.append(True)
            return save_checkpoint(state, p)
        return state.header()

    monkeypatch.setattr(runner_mod, "save_checkpoint", first_only)
    checkpointed = run(Dctcp(), scenario("ck"), checkpoint_every=0.0,
                       checkpoint_path=path)
    monkeypatch.undo()
    assert fct_fingerprint(checkpointed) == fct_fingerprint(straight)

    state = load_checkpoint(path)
    assert len(state.flows) < state.total_flows, \
        "snapshot must land mid-stream for this gate to mean anything"
    resumed = run(resume=state)
    assert fct_fingerprint(resumed) == fct_fingerprint(straight)
    assert resumed.wall_events == straight.wall_events
    assert resumed.health == straight.health


def test_run_grid_streamed_matches_serial():
    def scenario_factory(**params):
        return all_to_all_scenario("grid", WEB_SEARCH, n_flows=30,
                                   max_time=2.0, size_cap=150_000,
                                   stream=True, **params)

    tasks = [GridTask(scheme_factory=Dctcp,
                      scenario_factory=scenario_factory,
                      params={"seed": seed}, label=f"seed={seed}")
             for seed in (1, 2, 3, 4)]
    serial = run_grid(tasks, jobs=1)
    parallel = run_grid(tasks, jobs=2)
    assert [(s.stats, s.completed, s.n_flows) for s in serial] == \
           [(s.stats, s.completed, s.n_flows) for s in parallel]
    assert all(s.n_flows == 30 for s in serial)


# ---------------------------------------------------------------------------
# memory flatness
# ---------------------------------------------------------------------------


def test_stream_memory_stays_flat():
    """Draining 200k flows through a stream must not accumulate them:
    peak traced allocation stays orders of magnitude below what the
    materialized list of the same flows costs."""
    n = 200_000
    stream = PoissonFlowStream(all_to_all(range(16)), WEB_SEARCH, load=0.5,
                               link_rate=gbps(40), n_flows=n, n_senders=16,
                               seed=1, size_cap=1_000_000)
    tracemalloc.start()
    count = 0
    last = None
    for flow in stream:
        count += 1
        last = flow
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    assert count == n
    assert last.flow_id == n - 1
    # one Flow is ~200B materialized; 200k of them are tens of MB.  The
    # drain holds one look-ahead flow, so its peak is bounded by a
    # constant — 256KB leaves 100x headroom over observed (~2KB).
    assert peak < 256 * 1024, f"stream drain peaked at {peak} bytes"


# ---------------------------------------------------------------------------
# ordering properties
# ---------------------------------------------------------------------------


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 2**31),
       shares=st.lists(st.floats(0.1, 5.0), min_size=1, max_size=4),
       n_flows=st.integers(1, 120))
def test_merged_streams_nondecreasing_and_ids_disjoint(seed, shares, n_flows):
    names = sorted(WORKLOADS)
    classes = [TenantClass(names[i % len(names)],
                           WORKLOADS[names[i % len(names)]], share)
               for i, share in enumerate(shares)]
    stream = tenant_mix_stream(classes, all_to_all(range(6)), load=0.5,
                               link_rate=gbps(10), n_flows=n_flows,
                               n_senders=6, seed=seed, size_cap=1_000_000)
    flows = stream.materialize()
    assert len(flows) == n_flows
    times = [f.start_time for f in flows]
    assert times == sorted(times)
    # the per-class id blocks are contiguous and disjoint: together they
    # tile [0, n_flows) exactly
    assert sorted(f.flow_id for f in flows) == list(range(n_flows))


def test_merged_stream_rejects_backwards_source():
    class Backwards(PoissonFlowStream):
        def __next__(self):
            flow = super().__next__()
            self._now = 0.0  # sabotage the ordering contract
            return flow

    bad = Backwards(all_to_all(range(4)), WEB_SEARCH, load=0.5,
                    link_rate=gbps(10), n_flows=10, n_senders=4, seed=1)
    merged = MergedStream([bad])
    with pytest.raises(ValueError, match="backwards"):
        list(merged)


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 2**31), n_users=st.integers(1, 12))
def test_closed_loop_stream_is_ordered_and_deterministic(seed, n_users):
    def make():
        return ClosedLoopStream(all_to_all(range(6)), WEB_SEARCH, load=0.5,
                                link_rate=gbps(10), n_flows=50, n_senders=6,
                                seed=seed, size_cap=500_000, n_users=n_users)

    flows = make().materialize()
    assert len(flows) == 50
    times = [f.start_time for f in flows]
    assert times == sorted(times)
    assert [f.flow_id for f in flows] == list(range(50))
    assert flow_tuples(make().materialize()) == flow_tuples(flows)


def test_closed_loop_never_outpaces_line_rate_per_user():
    """A user's next flow never starts before its previous one could
    have finished at line rate (the service-proxy floor)."""
    rate = gbps(10)
    stream = ClosedLoopStream(incast([0, 1, 2], 3), WEB_SEARCH, load=1.0,
                              link_rate=rate, n_flows=200, seed=4,
                              size_cap=1_000_000, n_users=3)
    # reconstruct per-user launch order: flows come out globally ordered,
    # so track each user's previous flow via the stream's own heap keys
    by_time = stream.materialize()
    # aggregate check: offered bytes never exceed what n_users line-rate
    # loops could carry
    horizon = by_time[-1].start_time - by_time[0].start_time
    offered = sum(f.size for f in by_time[:-1]) * 8.0
    assert offered <= 3 * rate * horizon * 1.01


# ---------------------------------------------------------------------------
# load shapes
# ---------------------------------------------------------------------------


def test_diurnal_and_onoff_average_to_one():
    for shape in (DiurnalShape(period=2.0, depth=0.8),
                  OnOffShape(on=0.3, off=0.7, off_level=0.2)):
        period = getattr(shape, "period", None) or (shape.on + shape.off)
        n = 10_000
        mean = sum(shape.rate_at(i * period / n) for i in range(n)) / n
        assert mean == pytest.approx(1.0, rel=1e-3), shape.describe()
        assert min(shape.rate_at(i * period / n) for i in range(n)) > 0.0


def test_onoff_shape_concentrates_arrivals_in_bursts():
    shape = OnOffShape(on=0.001, off=0.009, off_level=0.01)
    stream = PoissonFlowStream(all_to_all(range(4)), MEMCACHED_W1, load=0.5,
                               link_rate=gbps(1), n_flows=2_000, n_senders=4,
                               seed=2, shape=shape)
    flows = stream.materialize()
    period = shape.on + shape.off
    in_burst = sum(1 for f in flows if (f.start_time % period) < shape.on)
    # 10% of the time carries the overwhelming majority of arrivals
    assert in_burst / len(flows) > 0.7


def test_load_shape_validation():
    with pytest.raises(ValueError):
        DiurnalShape(period=0.0)
    with pytest.raises(ValueError):
        DiurnalShape(depth=1.0)
    with pytest.raises(ValueError):
        OnOffShape(off_level=0.0)
    with pytest.raises(ValueError):
        OnOffShape(on=0.0)


def test_parse_load_shape_specs():
    assert parse_load_shape(None) is None
    assert parse_load_shape("") is None
    assert isinstance(parse_load_shape("constant"), ConstantShape)
    diurnal = parse_load_shape("diurnal:10:0.25")
    assert (diurnal.period, diurnal.depth) == (10.0, 0.25)
    onoff = parse_load_shape("onoff:2:8:0.05")
    assert (onoff.on, onoff.off, onoff.off_level) == (2.0, 8.0, 0.05)
    for bad in ("square", "constant:1", "diurnal:0", "onoff:1:1:0",
                "diurnal:abc"):
        with pytest.raises(ValueError):
            parse_load_shape(bad)


# ---------------------------------------------------------------------------
# tenant mixes
# ---------------------------------------------------------------------------


def test_tenant_mix_class_size_caps_enforced():
    classes = [TenantClass("web-search", WEB_SEARCH, 1.0, size_cap=50_000),
               TenantClass("memcached-w1", MEMCACHED_W1, 1.0)]
    flows = tenant_mix_stream(classes, all_to_all(range(4)), load=0.5,
                              link_rate=gbps(10), n_flows=200, n_senders=4,
                              seed=1).materialize()
    # class 0 owns ids [0, 100): its override cap binds there
    assert max(f.size for f in flows if f.flow_id < 100) <= 50_000


def test_tenant_mix_requires_finite_n_flows():
    with pytest.raises(ValueError, match="finite n_flows"):
        tenant_mix_stream([TenantClass("web-search", WEB_SEARCH, 1.0)],
                          all_to_all(range(4)), load=0.5,
                          link_rate=gbps(10), n_flows=None)


def test_parse_tenant_mix_specs():
    assert parse_tenant_mix(None) is None
    mix = parse_tenant_mix("web-search:3,memcached-w1:1")
    assert [(c.name, c.share) for c in mix] == \
           [("web-search", 3.0), ("memcached-w1", 1.0)]
    for bad in ("web-search", "nope:1", "web-search:0", "web-search:x", ","):
        with pytest.raises(ValueError):
            parse_tenant_mix(bad)


def test_flow_stream_front_door_dispatch():
    base = dict(load=0.5, link_rate=gbps(10), n_flows=10, n_senders=4)
    assert isinstance(flow_stream(all_to_all(range(4)), WEB_SEARCH, **base),
                      PoissonFlowStream)
    assert isinstance(
        flow_stream(all_to_all(range(4)), WEB_SEARCH, arrivals="closed",
                    **base),
        ClosedLoopStream)
    assert isinstance(
        flow_stream(all_to_all(range(4)), WEB_SEARCH,
                    tenants=[TenantClass("web-search", WEB_SEARCH, 1.0)],
                    **base),
        MergedStream)
    with pytest.raises(ValueError):
        flow_stream(all_to_all(range(4)), WEB_SEARCH, arrivals="closed",
                    tenants=[TenantClass("web-search", WEB_SEARCH, 1.0)],
                    **base)
    with pytest.raises(ValueError):
        flow_stream(all_to_all(range(4)), WEB_SEARCH, arrivals="sideways",
                    **base)
