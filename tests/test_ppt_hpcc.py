"""Tests for the PPT-over-HPCC extension (paper appendix B)."""

from conftest import make_ctx, make_star, run_single_flow
from repro.core.ppt_hpcc import PptHpcc, PptHpccSender
from repro.transport.base import Flow
from repro.transport.hpcc import Hpcc


def test_flow_completes():
    flow, ctx, _ = run_single_flow(PptHpcc(), 500_000, until=2.0)
    assert flow.completed


def test_lcp_opens_when_int_reports_spare():
    topo = make_star()
    ctx = make_ctx(topo)
    sender = PptHpccSender(Flow(0, 0, 1, 600_000, 0.0), ctx, PptHpcc())
    sender._last_u = 0.2  # INT says the path is mostly idle
    sender.cwnd = 5.0
    sender._spare_check()
    assert sender.lcp.active


def test_lcp_stays_closed_when_path_busy():
    topo = make_star()
    ctx = make_ctx(topo)
    sender = PptHpccSender(Flow(0, 0, 1, 600_000, 0.0), ctx, PptHpcc())
    sender._last_u = 0.99
    sender._spare_check()
    assert not sender.lcp.active


def test_uses_ppt_scheduling():
    flow, ctx, topo = run_single_flow(PptHpcc(), 5_000_000, until=5.0)
    sender = topo.network.hosts[0].endpoints[0]
    assert sender.identified_large
    assert sender.priority_for(0) == 3


def test_no_worse_than_plain_hpcc_solo():
    f_hpcc, _, _ = run_single_flow(Hpcc(), 300_000, until=2.0)
    f_ext, _, _ = run_single_flow(PptHpcc(), 300_000, until=2.0)
    assert f_ext.fct <= f_hpcc.fct * 1.1


def test_stop_cancels_timers():
    flow, ctx, topo = run_single_flow(PptHpcc(), 100_000, until=1.0)
    sender = topo.network.hosts[0].endpoints[0]
    assert sender.finished
    assert sender._check_event is None or sender._check_event.cancelled
