"""Unit and property tests for ECMP hashing and spraying."""

from collections import Counter

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.routing import SprayCounter, ecmp_hash


def test_single_choice_is_zero():
    assert ecmp_hash(123, 4, 1) == 0
    assert ecmp_hash(123, 4, 0) == 0


def test_deterministic():
    assert ecmp_hash(42, 7, 8) == ecmp_hash(42, 7, 8)


def test_different_switches_decorrelated():
    """Two switches should not always pick the same index for the same
    flows (independent hash seeds)."""
    picks_a = [ecmp_hash(f, 1, 4) for f in range(200)]
    picks_b = [ecmp_hash(f, 2, 4) for f in range(200)]
    assert picks_a != picks_b


def test_distribution_roughly_uniform():
    n_choices = 4
    counts = Counter(ecmp_hash(f, 0, n_choices) for f in range(4000))
    for choice in range(n_choices):
        assert 800 <= counts[choice] <= 1200  # 1000 +- 20%


@settings(max_examples=100, deadline=None)
@given(st.integers(min_value=0, max_value=2**31), st.integers(0, 64),
       st.integers(min_value=1, max_value=16))
def test_hash_in_range(flow_id, switch_id, n):
    assert 0 <= ecmp_hash(flow_id, switch_id, n) < n


def test_spray_counter_round_robin():
    spray = SprayCounter()
    picks = [spray.next(3) for _ in range(6)]
    assert picks == [0, 1, 2, 0, 1, 2]


def test_spray_counter_single_choice():
    spray = SprayCounter()
    assert spray.next(1) == 0
    assert spray.next(1) == 0
