"""Unit and property tests for ECMP hashing, spraying and the
flowlet/CONGA load balancers."""

import math
from collections import Counter

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.routing import (
    CongaBalancer,
    FlowletBalancer,
    SprayCounter,
    ecmp_hash,
    flowlet_hash,
    make_balancer,
)


class _FakeMux:
    def __init__(self, occupancy=0):
        self.occupancy = occupancy


class _FakePort:
    def __init__(self, occupancy=0):
        self.mux = _FakeMux(occupancy)


def test_single_choice_is_zero():
    assert ecmp_hash(123, 4, 1) == 0
    assert ecmp_hash(123, 4, 0) == 0


def test_deterministic():
    assert ecmp_hash(42, 7, 8) == ecmp_hash(42, 7, 8)


def test_different_switches_decorrelated():
    """Two switches should not always pick the same index for the same
    flows (independent hash seeds)."""
    picks_a = [ecmp_hash(f, 1, 4) for f in range(200)]
    picks_b = [ecmp_hash(f, 2, 4) for f in range(200)]
    assert picks_a != picks_b


def test_distribution_roughly_uniform():
    n_choices = 4
    counts = Counter(ecmp_hash(f, 0, n_choices) for f in range(4000))
    for choice in range(n_choices):
        assert 800 <= counts[choice] <= 1200  # 1000 +- 20%


@settings(max_examples=100, deadline=None)
@given(st.integers(min_value=0, max_value=2**31), st.integers(0, 64),
       st.integers(min_value=1, max_value=16))
def test_hash_in_range(flow_id, switch_id, n):
    assert 0 <= ecmp_hash(flow_id, switch_id, n) < n


def test_spray_counter_round_robin():
    spray = SprayCounter()
    picks = [spray.next(3) for _ in range(6)]
    assert picks == [0, 1, 2, 0, 1, 2]


def test_spray_counter_single_choice():
    spray = SprayCounter()
    assert spray.next(1) == 0
    assert spray.next(1) == 0


def test_ecmp_uniformity_chi_squared():
    """Sequential flow ids must hash uniformly: Pearson chi-squared over
    8 bins, 16000 draws.  Critical value at df=7, p=0.001 is 24.3; a
    weak mixer (e.g. hashing the raw flow id) scores in the thousands."""
    n_choices = 8
    n_draws = 16_000
    counts = Counter(ecmp_hash(f, 3, n_choices) for f in range(n_draws))
    expected = n_draws / n_choices
    chi2 = sum((counts[c] - expected) ** 2 / expected
               for c in range(n_choices))
    assert chi2 < 24.3, f"chi-squared {chi2:.1f} over {n_choices} bins"


def test_flowlet_hash_zero_flowlet_is_ecmp():
    for flow_id in range(50):
        for n in (1, 2, 4, 7):
            assert flowlet_hash(flow_id, 5, 0, n) == ecmp_hash(flow_id, 5, n)


@settings(max_examples=200, deadline=None)
@given(st.integers(min_value=0, max_value=2**31), st.integers(0, 64),
       st.integers(min_value=1, max_value=16),
       st.lists(st.floats(min_value=0, max_value=1.0), min_size=1,
                max_size=20))
def test_flowlet_infinite_gap_is_per_flow_ecmp(flow_id, switch_id, n, gaps):
    """With an infinite idle gap a flow never re-pins, so the flowlet
    balancer must reproduce per-flow ECMP exactly — the property that
    makes the default mode bit-identical."""
    lb = FlowletBalancer(gap=math.inf)
    candidates = [_FakePort() for _ in range(n)]
    now = 0.0
    for gap in gaps:
        now += gap
        assert (lb.choose(flow_id, candidates, now, switch_id)
                == ecmp_hash(flow_id, switch_id, n))
    assert lb.repins == 0


def test_flowlet_single_path_within_gap():
    """Packets inside one flowlet (inter-arrival < gap) stay on one
    path; only an idle gap longer than the threshold re-pins."""
    lb = FlowletBalancer(gap=1e-3)
    candidates = [_FakePort() for _ in range(4)]
    first = lb.choose(7, candidates, 0.0, 0)
    for i in range(1, 20):
        assert lb.choose(7, candidates, i * 1e-4, 0) == first
    assert lb.repins == 0
    repinned = lb.choose(7, candidates, 0.1, 0)
    assert lb.repins == 1
    assert repinned == flowlet_hash(7, 0, 1, 4)


def test_spray_wrap_bit_identical_to_unbounded():
    """The modulo wrap must not change a single choice: run a bounded
    and an unbounded counter through the 720720 boundary with a mixed
    fan-out schedule and demand identical sequences."""
    bounded = SprayCounter()
    unbounded_value = 0
    fanouts = [2, 3, 4, 7, 8, 16]
    for i in range(1_500_000):
        n = fanouts[i % len(fanouts)]
        expected = unbounded_value % n
        unbounded_value += 1
        assert bounded.next(n) == expected
    assert bounded._value < 720_720 * 16  # bounded even after 1.5M picks


def test_spray_wrap_extends_for_non_dividing_fanout():
    """720720 = lcm(1..16); a fan-out outside that range extends the
    modulus instead of breaking round-robin fairness."""
    spray = SprayCounter()
    picks = [spray.next(17) for _ in range(34)]
    assert picks == list(range(17)) * 2


def test_conga_picks_least_congested():
    lb = CongaBalancer(gap=1e-3)
    candidates = [_FakePort(500), _FakePort(100), _FakePort(300)]
    assert lb.choose(1, candidates, 0.0, 0) == 1
    # ties break to the lowest index, deterministically
    lb2 = CongaBalancer(gap=1e-3)
    assert lb2.choose(1, [_FakePort(5), _FakePort(5)], 0.0, 0) == 0


def test_conga_rechooses_when_routes_added():
    """Cache correctness: a path pinned before more equal-cost routes
    appeared must be re-evaluated against the full candidate set —
    the stale-cache bug the ECMP memo removal also fixes."""
    lb = CongaBalancer(gap=10.0)
    candidates = [_FakePort(500)]
    assert lb.choose(1, candidates, 0.0, 0) == 0
    candidates.append(_FakePort(0))  # a better route comes up
    assert lb.choose(1, candidates, 1e-6, 0) == 1


def test_conga_repins_after_idle_gap():
    lb = CongaBalancer(gap=1e-3)
    candidates = [_FakePort(100), _FakePort(500)]
    assert lb.choose(1, candidates, 0.0, 0) == 0
    candidates[0].mux.occupancy = 900
    # within the gap: pinned to the old path despite the new occupancy
    assert lb.choose(1, candidates, 1e-4, 0) == 0
    # after an idle gap: re-reads congestion and moves
    assert lb.choose(1, candidates, 0.1, 0) == 1
    assert lb.repins == 1


def test_make_balancer():
    assert make_balancer("ecmp") is None
    assert isinstance(make_balancer("flowlet"), FlowletBalancer)
    assert isinstance(make_balancer("conga"), CongaBalancer)
    custom = make_balancer("flowlet", gap=2e-3)
    assert custom.gap == 2e-3
    try:
        make_balancer("nope")
    except ValueError:
        pass
    else:
        raise AssertionError("unknown balancer must raise")
