"""Tests for switch forwarding and host dispatch behaviours."""

import pytest

from conftest import make_leaf_spine, make_star
from repro.sim.packet import Packet


def test_flow_sticks_to_one_ecmp_path():
    """Without spraying, all packets of one flow take the same uplink."""
    topo = make_leaf_spine(n_spine=2)
    net, sim = topo.network, topo.sim
    dst = topo.n_hosts - 1
    sink = type("E", (), {"on_packet": staticmethod(lambda p: None)})()
    net.hosts[dst].default_endpoint = sink
    for seq in range(40):
        net.hosts[0].send(Packet(77, 0, dst, seq, 1500))
    sim.run()
    spine_ports = [p for p in net.ports if p.name.startswith("leaf0->spine")]
    used = [p for p in spine_ports if p.pkts_sent > 0]
    assert len(used) == 1


def test_different_flows_spread_over_ecmp():
    topo = make_leaf_spine(n_spine=2)
    net, sim = topo.network, topo.sim
    dst = topo.n_hosts - 1
    net.hosts[dst].default_endpoint = type(
        "E", (), {"on_packet": staticmethod(lambda p: None)})()
    for flow_id in range(60):
        net.hosts[0].send(Packet(flow_id, 0, dst, 0, 1500))
    sim.run()
    spine_ports = [p for p in net.ports if p.name.startswith("leaf0->spine")]
    assert all(p.pkts_sent > 10 for p in spine_ports)


def test_spray_alternates_per_packet():
    topo = make_leaf_spine(n_spine=2)
    net, sim = topo.network, topo.sim
    net.set_spray(True)
    dst = topo.n_hosts - 1
    net.hosts[dst].default_endpoint = type(
        "E", (), {"on_packet": staticmethod(lambda p: None)})()
    for seq in range(40):
        net.hosts[0].send(Packet(77, 0, dst, seq, 1500))
    sim.run()
    spine_ports = [p for p in net.ports if p.name.startswith("leaf0->spine")]
    counts = sorted(p.pkts_sent for p in spine_ports)
    assert counts == [20, 20]


def test_host_ops_counters():
    topo = make_star(3)
    net, sim = topo.network, topo.sim
    received = []
    net.hosts[1].default_endpoint = type(
        "E", (), {"on_packet": staticmethod(received.append)})()
    before_sent = net.hosts[0].ops_sent
    net.hosts[0].send(Packet(1, 0, 1, 0, 1500))
    sim.run()
    assert net.hosts[0].ops_sent == before_sent + 1
    assert net.hosts[1].ops_received == 1
    assert net.hosts[0].datapath_ops >= 1


def test_host_send_without_uplink_raises():
    from repro.sim.host import Host
    host = Host(99)
    with pytest.raises(RuntimeError):
        host.send(Packet(1, 99, 0, 0, 1500))


def test_switch_pkts_forwarded_counter():
    topo = make_star(3)
    net, sim = topo.network, topo.sim
    net.hosts[1].default_endpoint = type(
        "E", (), {"on_packet": staticmethod(lambda p: None)})()
    for seq in range(5):
        net.hosts[0].send(Packet(1, 0, 1, seq, 1500))
    sim.run()
    assert net.switches[0].pkts_forwarded == 5


def test_switch_ports_enumeration():
    topo = make_star(4)
    ports = topo.network.switches[0].ports()
    assert len(ports) == 4  # one downlink per host


def test_hops_counted_per_switch():
    topo = make_leaf_spine()
    net, sim = topo.network, topo.sim
    seen = []
    dst = topo.n_hosts - 1
    net.hosts[dst].default_endpoint = type(
        "E", (), {"on_packet": staticmethod(seen.append)})()
    net.hosts[0].send(Packet(1, 0, dst, 0, 1500))
    sim.run()
    assert seen[0].hops == 3
