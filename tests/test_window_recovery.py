"""Loss-recovery coverage for the window transport core.

Forced packet drops must trigger fast-retransmit and RTO (with
exponential backoff, capped), and the flow must still complete — for
every window-based scheme in the family (DCTCP, PIAS, PPT).
"""

import random

import pytest

from conftest import make_ctx, quick_qcfg
from repro.core.ppt import Ppt
from repro.faults import LinkFaultInjector, LossInjector
from repro.sim.topology import dumbbell
from repro.transport.base import Flow, TransportConfig
from repro.transport.dctcp import Dctcp
from repro.transport.pias import Pias
from repro.units import gbps, us

SCHEMES = [Dctcp, Pias, Ppt]


def launch(scheme_cls, topo, size=300_000, **cfg):
    scheme = scheme_cls()
    scheme.configure_network(topo.network)
    cfg.setdefault("min_rto", 1e-3)
    ctx = make_ctx(topo, **cfg)
    flow = Flow(0, 0, 1, size, 0.0)
    scheme.start_flow(flow, ctx)
    return flow, topo.network.hosts[0].endpoints[0]


def make_dumbbell():
    return dumbbell(rate=gbps(10), prop_delay=us(5), qcfg=quick_qcfg())


@pytest.mark.parametrize("scheme_cls", SCHEMES, ids=lambda c: c.name)
def test_random_loss_triggers_fast_retransmit(scheme_cls):
    topo = make_dumbbell()
    port = topo.network.port_named("sw0->sw1")
    LossInjector(topo.sim, port, 0.05, random.Random("loss")).attach()
    flow, sender = launch(scheme_cls, topo)
    topo.sim.run(until=2.0)
    assert flow.completed
    # random loss with SACK feedback is recovered via fast retransmit
    assert sender.pkts_retransmitted > 0


@pytest.mark.parametrize("scheme_cls", SCHEMES, ids=lambda c: c.name)
def test_blackout_triggers_rto_with_backoff(scheme_cls):
    topo = make_dumbbell()
    port = topo.network.port_named("sw0->sw1")
    injector = LinkFaultInjector(topo.sim, port).attach()
    # blackout long enough for several timeouts, shorter than the cap
    # would need to ride out: min_rto=1ms, max_rto=8ms, 50ms of darkness
    injector.schedule_blackout(0.0002, 0.05)
    flow, sender = launch(scheme_cls, topo, max_rto=8e-3, rto_backoff=2.0)

    samples = {}

    def probe():
        samples["exp"] = sender.rto_backoff_exp
        samples["interval"] = sender.rto_interval()

    topo.sim.schedule_at(0.045, probe)  # deep into the blackout
    topo.sim.run(until=2.0)

    assert flow.completed
    assert sender.rtos_fired >= 2
    # mid-blackout the timer had backed off, but never past the cap
    assert samples["exp"] >= 2
    assert samples["interval"] <= 8e-3
    assert samples["interval"] > sender.cfg.min_rto
    # the first post-recovery ACK reset the backoff
    assert sender.rto_backoff_exp == 0


def test_rto_interval_backoff_math():
    topo = make_dumbbell()
    flow, sender = launch(Dctcp, topo, min_rto=1e-3, max_rto=16e-3,
                          rto_backoff=2.0)
    sender.srtt = 0.0  # pin the base at min_rto
    assert sender.rto_interval() == pytest.approx(1e-3)
    for exp, expected in [(1, 2e-3), (2, 4e-3), (3, 8e-3),
                          (4, 16e-3), (5, 16e-3), (16, 16e-3)]:
        sender.rto_backoff_exp = exp
        assert sender.rto_interval() == pytest.approx(expected)


def test_backoff_exponent_is_capped():
    topo = make_dumbbell()
    flow, sender = launch(Dctcp, topo)
    sender.rto_backoff_exp = sender.MAX_BACKOFF_EXP
    sender._on_rto()
    assert sender.rto_backoff_exp == sender.MAX_BACKOFF_EXP
    assert sender.rto_interval() <= max(sender.cfg.max_rto,
                                        sender.cfg.min_rto)


def test_max_rto_defaults_sane():
    cfg = TransportConfig()
    assert cfg.max_rto >= cfg.min_rto
    assert cfg.rto_backoff > 1.0
