"""Loss-recovery coverage for the window transport core.

Forced packet drops must trigger fast-retransmit and RTO (with
exponential backoff, capped), and the flow must still complete — for
every window-based scheme in the family (DCTCP, PIAS, PPT).
"""

import random

import pytest

from conftest import make_ctx, quick_qcfg
from repro.core.ppt import Ppt
from repro.faults import LinkFaultInjector, LossInjector
from repro.sim.topology import dumbbell
from repro.transport.base import Flow, TransportConfig
from repro.transport.dctcp import Dctcp
from repro.transport.pias import Pias
from repro.units import gbps, us

SCHEMES = [Dctcp, Pias, Ppt]


def launch(scheme_cls, topo, size=300_000, **cfg):
    scheme = scheme_cls()
    scheme.configure_network(topo.network)
    cfg.setdefault("min_rto", 1e-3)
    ctx = make_ctx(topo, **cfg)
    flow = Flow(0, 0, 1, size, 0.0)
    scheme.start_flow(flow, ctx)
    return flow, topo.network.hosts[0].endpoints[0]


def make_dumbbell():
    return dumbbell(rate=gbps(10), prop_delay=us(5), qcfg=quick_qcfg())


@pytest.mark.parametrize("scheme_cls", SCHEMES, ids=lambda c: c.name)
def test_random_loss_triggers_fast_retransmit(scheme_cls):
    topo = make_dumbbell()
    port = topo.network.port_named("sw0->sw1")
    LossInjector(topo.sim, port, 0.05, random.Random("loss")).attach()
    flow, sender = launch(scheme_cls, topo)
    topo.sim.run(until=2.0)
    assert flow.completed
    # random loss with SACK feedback is recovered via fast retransmit
    assert sender.pkts_retransmitted > 0


@pytest.mark.parametrize("scheme_cls", SCHEMES, ids=lambda c: c.name)
def test_blackout_triggers_rto_with_backoff(scheme_cls):
    topo = make_dumbbell()
    port = topo.network.port_named("sw0->sw1")
    injector = LinkFaultInjector(topo.sim, port).attach()
    # blackout long enough for several timeouts, shorter than the cap
    # would need to ride out: min_rto=1ms, max_rto=8ms, 50ms of darkness
    injector.schedule_blackout(0.0002, 0.05)
    flow, sender = launch(scheme_cls, topo, max_rto=8e-3, rto_backoff=2.0)

    samples = {}

    def probe():
        samples["exp"] = sender.rto_backoff_exp
        samples["interval"] = sender.rto_interval()

    topo.sim.schedule_at(0.045, probe)  # deep into the blackout
    topo.sim.run(until=2.0)

    assert flow.completed
    assert sender.rtos_fired >= 2
    # mid-blackout the timer had backed off, but never past the cap
    assert samples["exp"] >= 2
    assert samples["interval"] <= 8e-3
    assert samples["interval"] > sender.cfg.min_rto
    # the first post-recovery ACK reset the backoff
    assert sender.rto_backoff_exp == 0


def test_rto_interval_backoff_math():
    topo = make_dumbbell()
    flow, sender = launch(Dctcp, topo, min_rto=1e-3, max_rto=16e-3,
                          rto_backoff=2.0)
    sender.srtt = 0.0  # pin the base at min_rto
    assert sender.rto_interval() == pytest.approx(1e-3)
    for exp, expected in [(1, 2e-3), (2, 4e-3), (3, 8e-3),
                          (4, 16e-3), (5, 16e-3), (16, 16e-3)]:
        sender.rto_backoff_exp = exp
        assert sender.rto_interval() == pytest.approx(expected)


def test_backoff_exponent_is_capped():
    topo = make_dumbbell()
    flow, sender = launch(Dctcp, topo)
    sender.rto_backoff_exp = sender.MAX_BACKOFF_EXP
    sender._on_rto()
    assert sender.rto_backoff_exp == sender.MAX_BACKOFF_EXP
    assert sender.rto_interval() <= max(sender.cfg.max_rto,
                                        sender.cfg.min_rto)


def test_max_rto_defaults_sane():
    cfg = TransportConfig()
    assert cfg.max_rto >= cfg.min_rto
    assert cfg.rto_backoff > 1.0


def test_base_rto_capped_by_max_rto():
    # an srtt inflated by queueing must not let the un-backed-off base
    # timeout exceed the cap that backoff itself respects
    topo = make_dumbbell()
    flow, sender = launch(Dctcp, topo, min_rto=1e-3, max_rto=16e-3)
    sender.srtt = 1.0
    assert sender.rto_backoff_exp == 0
    assert sender.rto_interval() == pytest.approx(16e-3)
    # backoff on top of the capped base stays capped too
    sender.rto_backoff_exp = 3
    assert sender.rto_interval() == pytest.approx(16e-3)


def test_post_rto_resends_count_as_retransmissions():
    """Regression: RTO recovery re-sends presumed-lost packets through
    the plain try_send path; those are retransmissions and must be
    counted as such (pre-fix they went out with ``retransmit=False``)."""
    topo = make_dumbbell()
    flow, sender = launch(Dctcp, topo, size=30_000)
    # let the initial window leave the host, but nothing is ACKed yet
    topo.sim.run(until=10e-6)
    assert sender.pkts_transmitted > 0
    assert sender.pkts_retransmitted == 0
    before = sender.pkts_transmitted
    sender._on_rto()  # presume everything in flight lost
    resent = sender.pkts_transmitted - before
    assert resent > 0
    assert sender.pkts_retransmitted == resent


def test_blackout_rto_recovery_is_visible_in_counters():
    # blackout from t=0: no SACK feedback exists, so recovery is pure
    # RTO — and that recovery work must show up in the counters
    topo = make_dumbbell()
    port = topo.network.port_named("sw0->sw1")
    injector = LinkFaultInjector(topo.sim, port).attach()
    injector.schedule_blackout(0.0, 0.005)
    flow, sender = launch(Dctcp, topo, size=30_000, max_rto=8e-3)
    topo.sim.run(until=2.0)
    assert flow.completed
    assert sender.rtos_fired >= 1
    assert sender.pkts_retransmitted > 0


def test_ack_clocking_does_not_churn_timers():
    """The lazy-deadline RTO keeps one live timer per sender instead of
    one cancelled heap entry per ACK: mid-transfer the heap must hold
    (almost) no dead entries."""
    topo = make_dumbbell()
    flow, sender = launch(Dctcp, topo, size=300_000)
    dead_counts = []

    def probe():
        dead_counts.append(topo.sim.pending - topo.sim.live_pending)
        if not flow.completed:
            topo.sim.schedule(50e-6, probe)

    topo.sim.schedule(50e-6, probe)
    topo.sim.run(until=2.0)
    assert flow.completed
    assert sender.acks_received > 100  # plenty of ACK-clocking happened
    # at most the completion-time cancel is ever outstanding
    assert max(dead_counts) <= 2


# ---------------------------------------------------------------------------
# Dup-ACK rescan guard: skipping the O(W) hole scan while the no-hole
# floor proves it empty must be *exactly* behaviour-preserving
# ---------------------------------------------------------------------------


def test_dup_ack_rescan_guard_is_bit_identical():
    from repro.experiments.runner import run
    from repro.experiments.scenarios import incast_scenario, star_fabric
    from repro.transport.dctcp import DctcpSender
    from repro.workloads.distributions import WEB_SEARCH

    class LegacyRescanSender(DctcpSender):
        # pre-guard behaviour: rescan the outstanding map on every
        # third-and-later dup ACK, never trusting the floor
        def _fast_retransmit(self):
            self._no_hole_floor = None
            super()._fast_retransmit()

    class LegacyRescanDctcp(Dctcp):
        sender_cls = LegacyRescanSender

    def scenario():
        return incast_scenario("rescan", WEB_SEARCH, n_senders=5,
                               load=0.8, n_flows=40,
                               fabric=star_fabric(6), seed=17)

    current = run(Dctcp(), scenario())
    legacy = run(LegacyRescanDctcp(), scenario())

    # the workload must actually exercise dup-ACK recovery
    assert current.health.retransmits_total > 0
    assert ([f.fct for f in current.flows] == [f.fct for f in legacy.flows])
    assert current.stats == legacy.stats
    assert current.wall_events == legacy.wall_events
    assert (current.health.retransmits_total
            == legacy.health.retransmits_total)
