"""Tests for trace-file loading/saving."""

import pytest

from repro.experiments.runner import Scenario, run
from repro.experiments.scenarios import sim_fabric
from repro.transport.base import Flow
from repro.transport.dctcp import Dctcp
from repro.units import gbps
from repro.workloads.distributions import WEB_SEARCH
from repro.workloads.generator import poisson_flows
from repro.workloads.patterns import all_to_all
from repro.workloads.tracefile import (
    TraceFormatError,
    load_csv,
    load_jsonl,
    load_trace,
    save_trace,
    trace_scenario_flows,
)


def sample_flows():
    return [
        Flow(0, 0, 1, 10_000, 0.0),
        Flow(1, 2, 3, 500_000, 1e-4),
        Flow(2, 1, 0, 999, 2e-4),
    ]


def assert_same(a, b):
    assert [(f.flow_id, f.src, f.dst, f.size, f.start_time) for f in a] == \
           [(f.flow_id, f.src, f.dst, f.size, f.start_time) for f in b]


@pytest.mark.parametrize("suffix", ["csv", "jsonl", "ndjson", "json"])
def test_round_trip_every_suffix(tmp_path, suffix):
    """save_trace and load_trace must agree on the format for every
    suffix — ``.json`` used to be written as CSV but read as JSONL, so
    a file could never load back."""
    path = tmp_path / f"trace.{suffix}"
    save_trace(sample_flows(), path)
    assert_same(load_trace(path), sample_flows())
    first = path.read_text().splitlines()[0]
    if suffix == "csv":
        assert first.startswith("flow_id")
    else:
        assert first.lstrip().startswith("{")


def test_headerless_csv(tmp_path):
    path = tmp_path / "raw.csv"
    path.write_text("0,0,1,10000,0.0\n1,2,3,500,0.0001\n")
    flows = load_csv(path)
    assert len(flows) == 2
    assert flows[1].size == 500


def test_jsonl_without_flow_id_uses_line_number(tmp_path):
    path = tmp_path / "t.jsonl"
    path.write_text('{"src":0,"dst":1,"size":100,"start_time":0.0}\n'
                    '{"src":1,"dst":0,"size":200,"start_time":0.1}\n')
    flows = load_jsonl(path)
    assert [f.flow_id for f in flows] == [0, 1]


def test_flows_sorted_by_start_time(tmp_path):
    path = tmp_path / "t.jsonl"
    path.write_text(
        '{"flow_id":5,"src":0,"dst":1,"size":100,"start_time":0.5}\n'
        '{"flow_id":6,"src":1,"dst":0,"size":100,"start_time":0.1}\n')
    flows = load_jsonl(path)
    assert [f.flow_id for f in flows] == [6, 5]


@pytest.mark.parametrize("bad", [
    '{"src":0,"dst":1,"size":100}',                      # missing field
    '{"src":0,"dst":0,"size":100,"start_time":0}',       # self-pair
    '{"src":0,"dst":1,"size":0,"start_time":0}',         # zero size
    '{"src":0,"dst":1,"size":100,"start_time":-1}',      # negative time
    'not json at all',
])
def test_malformed_jsonl_rejected(tmp_path, bad):
    path = tmp_path / "bad.jsonl"
    path.write_text(bad + "\n")
    with pytest.raises(TraceFormatError):
        load_jsonl(path)


def test_duplicate_ids_rejected(tmp_path):
    path = tmp_path / "dup.jsonl"
    path.write_text(
        '{"flow_id":1,"src":0,"dst":1,"size":100,"start_time":0}\n'
        '{"flow_id":1,"src":1,"dst":0,"size":100,"start_time":0}\n')
    with pytest.raises(TraceFormatError):
        load_jsonl(path)


def test_endpoint_bounds_check(tmp_path):
    path = tmp_path / "t.jsonl"
    path.write_text('{"src":0,"dst":99,"size":100,"start_time":0}\n')
    with pytest.raises(TraceFormatError):
        trace_scenario_flows(path, n_hosts=8)


def test_frozen_poisson_draw_replays_identically(tmp_path):
    """Freeze a generator draw to disk, replay it through the runner."""
    generated = poisson_flows(all_to_all(range(8)), WEB_SEARCH, load=0.4,
                              link_rate=gbps(40), n_flows=15, n_senders=8,
                              size_cap=300_000, seed=3)
    path = tmp_path / "frozen.csv"
    save_trace(generated, path)
    fabric = sim_fabric(n_leaf=2, n_spine=2, hosts_per_leaf=4)

    def build_flows(topo):
        return trace_scenario_flows(path, topo.n_hosts)

    scenario = Scenario("frozen", fabric, build_flows)
    result = run(Dctcp(), scenario)
    assert result.completion_rate == 1.0
    assert_same(result.flows, generated)
