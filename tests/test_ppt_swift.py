"""Tests for the PPT-over-Swift variant (Fig. 14)."""

from conftest import make_ctx, make_star, run_single_flow
from repro.core.ppt_swift import PptSwift, PptSwiftSender
from repro.transport.base import Flow
from repro.transport.swift import Swift


def test_flow_completes():
    flow, ctx, _ = run_single_flow(PptSwift(), 500_000, until=2.0)
    assert flow.completed


def test_lcp_opens_when_delay_below_target():
    topo = make_star()
    ctx = make_ctx(topo)
    flow = Flow(0, 0, 1, 600_000, 0.0)
    scheme = PptSwift()
    scheme.start_flow(flow, ctx)
    sender = topo.network.hosts[0].endpoints[0]
    topo.sim.run(until=sender.base_rtt * 3)
    assert sender.lcp.loops_opened > 0


def test_lcp_not_opened_when_delay_above_target():
    topo = make_star()
    ctx = make_ctx(topo)
    sender = PptSwiftSender(Flow(0, 0, 1, 600_000, 0.0), ctx, PptSwift())
    sender.srtt = sender.target_delay * 5  # congested
    sender._delay_check()
    assert not sender.lcp.active


def test_beats_plain_swift_solo():
    f_swift, _, _ = run_single_flow(Swift(), 100_000)
    f_variant, _, _ = run_single_flow(PptSwift(), 100_000)
    assert f_variant.fct <= f_swift.fct


def test_uses_mirror_scheduling():
    flow, ctx, topo = run_single_flow(PptSwift(), 5_000_000, until=5.0)
    sender = topo.network.hosts[0].endpoints[0]
    assert sender.identified_large
    assert sender.priority_for(0) == 3


def test_stop_cancels_delay_check():
    flow, ctx, topo = run_single_flow(PptSwift(), 100_000, until=1.0)
    sender = topo.network.hosts[0].endpoints[0]
    assert sender.finished
    assert sender._check_event is None or sender._check_event.cancelled
