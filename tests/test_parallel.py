"""Parallel experiment executor: determinism, summaries, sweep wiring.

The headline guarantee under test: ``sweep(..., jobs=N)`` and
``run_grid(..., jobs=N)`` return **bit-identical** results to the serial
path, in the same deterministic grid order — parallelism must be purely
a wall-clock optimisation.
"""

import pickle

from repro.core.ppt import Ppt
from repro.experiments.parallel import (
    GridTask,
    RunSummary,
    default_jobs,
    run_grid,
    scheme_grid,
)
from repro.experiments.runner import run
from repro.experiments.scenarios import all_to_all_scenario, sim_fabric
from repro.experiments.sweeps import load_sweep_variants, sweep
from repro.transport.dctcp import Dctcp
from repro.workloads.distributions import WEB_SEARCH

TINY_FABRIC = sim_fabric(n_leaf=2, n_spine=2, hosts_per_leaf=2)


def tiny_factory(load=0.4, seed=7):
    return all_to_all_scenario(
        f"par-{load}-{seed}", WEB_SEARCH, load=load, n_flows=8,
        size_cap=200_000, seed=seed, fabric=TINY_FABRIC)


def tiny_tasks():
    return scheme_grid({"dctcp": Dctcp, "ppt": Ppt}, tiny_factory,
                       load_sweep_variants([0.3, 0.5]))


def test_parallel_sweep_bit_identical_to_serial():
    factories = {"dctcp": Dctcp, "ppt": Ppt}
    variants = load_sweep_variants([0.3, 0.5])
    serial = sweep(factories, tiny_factory, variants)
    parallel = sweep(factories, tiny_factory, variants, jobs=2)
    # same rows, same order, same stats — dataclass equality is exact
    assert parallel == serial


def test_run_grid_parallel_equals_serial():
    serial = run_grid(tiny_tasks())
    parallel = run_grid(tiny_tasks(), jobs=2)
    assert parallel == serial


def test_grid_order_is_variants_outer_schemes_inner():
    tasks = tiny_tasks()
    assert [(t.scheme_key, t.params["load"]) for t in tasks] == [
        ("dctcp", 0.3), ("ppt", 0.3), ("dctcp", 0.5), ("ppt", 0.5)]
    summaries = run_grid(tasks, jobs=2)
    assert [(s.scheme, s.params["load"]) for s in summaries] == [
        ("dctcp", 0.3), ("ppt", 0.3), ("dctcp", 0.5), ("ppt", 0.5)]


def test_summary_matches_full_result():
    task = GridTask(scheme_factory=Dctcp, scenario_factory=tiny_factory,
                    params={"load": 0.4}, scheme_key="dctcp")
    summary = task.execute()
    result = run(Dctcp(), tiny_factory(load=0.4))
    assert summary.scheme == "dctcp"
    assert summary.scenario == result.scenario_name
    assert summary.stats == result.stats
    assert summary.health == result.health
    assert summary.completed == result.completed == summary.n_flows == 8
    assert summary.wall_events == result.wall_events
    assert summary.completion_rate == 1.0


def test_summary_survives_pickling():
    summary = run_grid(tiny_tasks()[:1])[0]
    clone = pickle.loads(pickle.dumps(summary))
    assert clone == summary
    assert isinstance(clone, RunSummary)


def test_progress_fires_once_per_cell_in_grid_order():
    labels_serial, labels_parallel = [], []
    run_grid(tiny_tasks(), progress=labels_serial.append)
    run_grid(tiny_tasks(), jobs=2, progress=labels_parallel.append)
    assert labels_serial == labels_parallel
    assert len(labels_serial) == 4


def test_jobs_minus_one_uses_default_jobs():
    assert default_jobs() >= 1
    summaries = run_grid(tiny_tasks()[:2], jobs=-1)
    assert len(summaries) == 2


def test_cli_jobs_flag():
    from repro.cli import main
    assert main(["run", "--schemes", "dctcp", "--flows", "8",
                 "--jobs", "2", "--health"]) == 0


# ---------------------------------------------------------------------------
# worker-count defaults + no-fork degrade
# ---------------------------------------------------------------------------


def test_default_jobs_respects_cpu_affinity(monkeypatch):
    import os
    monkeypatch.setattr(os, "sched_getaffinity", lambda pid: {0, 1, 2},
                        raising=False)
    assert default_jobs() == 3


def test_default_jobs_falls_back_without_affinity(monkeypatch):
    import os

    def no_affinity(pid):
        raise OSError("not supported here")

    monkeypatch.setattr(os, "sched_getaffinity", no_affinity, raising=False)
    monkeypatch.setattr(os, "cpu_count", lambda: 6)
    assert default_jobs() == 6


def test_run_grid_warns_once_and_degrades_serially_without_fork(monkeypatch):
    import multiprocessing
    import warnings

    import pytest

    import repro.experiments.parallel as par

    monkeypatch.setattr(par, "_fork_available", lambda: False)
    monkeypatch.setattr(par, "_warned_no_fork", False)
    with pytest.warns(RuntimeWarning,
                      match=multiprocessing.get_start_method()):
        degraded = par.run_grid(tiny_tasks()[:2], jobs=2)
    # one-shot: a second degraded grid stays silent
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        again = par.run_grid(tiny_tasks()[:2], jobs=2)
    serial = par.run_grid(tiny_tasks()[:2])
    assert degraded == serial == again


def test_run_grid_jobs_one_never_warns(monkeypatch):
    import warnings

    import repro.experiments.parallel as par

    monkeypatch.setattr(par, "_fork_available", lambda: False)
    monkeypatch.setattr(par, "_warned_no_fork", False)
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        par.run_grid(tiny_tasks()[:1], jobs=1)
