"""Tests for the hypothetical DCTCP construction (§2.3)."""

import pytest

from conftest import make_ctx, make_star, run_single_flow
from repro.core.hypothetical import HypotheticalDctcp, MwRecordingDctcp
from repro.transport.base import Flow
from repro.transport.dctcp import Dctcp


def test_recording_pass_stores_mw():
    recorder = MwRecordingDctcp()
    flow, ctx, _ = run_single_flow(recorder, 300_000, until=2.0)
    assert flow.completed
    assert 0 in recorder.mw_table
    assert recorder.mw_table[0] > 0


def test_hypothetical_uses_recorded_mw():
    recorder = MwRecordingDctcp()
    run_single_flow(recorder, 300_000, until=2.0)
    scheme = HypotheticalDctcp(recorder.mw_table)
    flow, ctx, _ = run_single_flow(scheme, 300_000, until=2.0)
    assert flow.completed


def test_unknown_flow_falls_back_to_init_cwnd():
    scheme = HypotheticalDctcp({})
    flow, ctx, _ = run_single_flow(scheme, 100_000, until=1.0)
    assert flow.completed


def test_fill_factor_names():
    assert HypotheticalDctcp({}, 1.0).name == "hypothetical-dctcp"
    assert HypotheticalDctcp({}, 0.5).name == "hypothetical-dctcp-50"
    assert HypotheticalDctcp({}, 1.5).name == "hypothetical-dctcp-150"


def test_filler_target_capped_at_path_capacity():
    topo = make_star()
    ctx = make_ctx(topo)
    from repro.core.hypothetical import _HypotheticalSender
    sender = _HypotheticalSender(Flow(0, 0, 1, 1_000_000, 0.0), ctx,
                                 mw=10_000.0, fill_factor=1.0)
    assert sender.target_window <= 2.0 * ctx.bdp_packets(sender.flow)


def test_hypothetical_not_slower_than_dctcp_solo():
    f_dctcp, _, _ = run_single_flow(Dctcp(), 200_000, until=2.0)
    recorder = MwRecordingDctcp()
    run_single_flow(recorder, 200_000, until=2.0)
    f_hypo, _, _ = run_single_flow(HypotheticalDctcp(recorder.mw_table),
                                   200_000, until=2.0)
    assert f_hypo.fct <= f_dctcp.fct * 1.1


def test_filler_is_ecn_blind():
    """The oracle fills to its target regardless of ECE marks — that is
    what makes the Fig. 3 overfill sweep hurt."""
    topo = make_star()
    ctx = make_ctx(topo)
    from repro.core.hypothetical import _HypotheticalSender
    from repro.sim.packet import ACK, Packet
    sender = _HypotheticalSender(Flow(0, 0, 1, 1_000_000, 0.0), ctx,
                                 mw=50.0, fill_factor=1.0)
    ack = Packet(0, 1, 0, 5, 64, kind=ACK)
    ack.lcp = True
    ack.ecn_ce = True
    ack.ack_seq = 0
    sender.on_packet(ack)  # must not raise nor install any throttle
    assert not hasattr(sender, "_suppress_until")
    assert 5 in sender.delivered
