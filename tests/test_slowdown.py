"""Tests for the FCT-slowdown metric."""

import math

import pytest

from conftest import make_ctx, make_leaf_spine, make_star, run_single_flow
from repro.core.ppt import Ppt
from repro.metrics.slowdown import SlowdownStats, ideal_fct
from repro.transport.base import Flow
from repro.transport.dctcp import Dctcp
from repro.units import gbps


def test_ideal_fct_components():
    topo = make_star()
    flow = Flow(0, 0, 1, 143_600, 0.0)  # 100 payload packets
    ideal = ideal_fct(flow, topo.network)
    base = topo.network.base_delay(0, 1)
    assert ideal > base
    serialization = ideal - base
    expected = 143_600 * (1 + 64 / 1436) * 8 / topo.edge_rate
    assert serialization == pytest.approx(expected)


def test_solo_flow_slowdown_near_one():
    """An uncontended NDP-style ideal case: DCTCP solo still pays slow
    start, so its slowdown is >1 but bounded for a BDP-scale flow."""
    flow, ctx, topo = run_single_flow(Dctcp(), 150_000, until=2.0)
    stats = SlowdownStats.from_flows([flow], topo.network)
    assert stats.n_flows == 1
    assert 1.0 <= stats.overall_avg <= 10.0


def test_ppt_slowdown_below_dctcp_solo():
    f_d, _, topo_d = run_single_flow(Dctcp(), 80_000)
    f_p, _, topo_p = run_single_flow(Ppt(), 80_000)
    s_d = SlowdownStats.from_flows([f_d], topo_d.network)
    s_p = SlowdownStats.from_flows([f_p], topo_p.network)
    assert s_p.overall_avg < s_d.overall_avg


def test_incomplete_flows_ignored():
    topo = make_star()
    stats = SlowdownStats.from_flows([Flow(0, 0, 1, 1000, 0.0)],
                                     topo.network)
    assert stats.n_flows == 0
    assert math.isnan(stats.overall_avg)


def test_slowdown_floor_is_one():
    """Measurement noise can make fct marginally under ideal (ideal uses
    the full serialization including overhead); slowdown is clamped."""
    topo = make_star()
    flow = Flow(0, 0, 1, 1000, 0.0)
    flow.finish_time = 1e-9  # absurdly fast
    stats = SlowdownStats.from_flows([flow], topo.network)
    assert stats.overall_avg == 1.0


def test_row_keys():
    flow, ctx, topo = run_single_flow(Dctcp(), 150_000, until=2.0)
    row = SlowdownStats.from_flows([flow], topo.network).row()
    assert set(row) == {"flows", "slowdown_avg", "slowdown_p99",
                        "small_slowdown_avg", "small_slowdown_p99",
                        "large_slowdown_avg"}


def test_ideal_fct_uses_path_bottleneck_when_oversubscribed():
    """Regression: ideal_fct once serialized at the *edge* rate even
    when the path's core links were slower.  On a 4:1 oversubscribed
    leaf-spine that understated the ideal 4x, inflating no slowdown but
    deflating every reported one."""
    topo = make_leaf_spine(edge_rate=gbps(40), core_rate=gbps(10))
    # hosts 0/1 share leaf0; host 2 is on leaf1 -> cross-leaf path
    # traverses a 10G spine link, so the bottleneck is NOT the edge
    cross = Flow(0, 0, 2, 1_000_000, 0.0)
    ideal_cross = ideal_fct(cross, topo.network)
    base = topo.network.base_delay(0, 2)
    wire = 1_000_000 * (1 + 64 / 1436)
    assert ideal_cross - base == pytest.approx(wire * 8 / gbps(10))
    # the stale edge-rate answer is 4x too optimistic
    assert ideal_cross - base > 3.9 * (wire * 8 / gbps(40))
    # intra-leaf traffic never crosses a spine: still edge-rate ideal
    intra = Flow(1, 0, 1, 1_000_000, 0.0)
    ideal_intra = ideal_fct(intra, topo.network)
    base_intra = topo.network.base_delay(0, 1)
    assert ideal_intra - base_intra == pytest.approx(wire * 8 / gbps(40))


def test_path_min_rate_cached_with_base_delay():
    topo = make_leaf_spine(edge_rate=gbps(40), core_rate=gbps(10))
    net = topo.network
    assert net.path_min_rate(0, 2) == gbps(10)
    assert net.path_min_rate(0, 1) == gbps(40)
    assert net.path_min_rate(0, 0) == gbps(40)  # self: uplink rate
    # the cache is filled alongside base_delay's
    assert (0, 2) in net._path_min_rate_cache


def test_slowdown_row_marks_empty_buckets():
    """An all-small run renders large-bucket cells as "n=0", never nan."""
    topo = make_star()
    flow = Flow(0, 0, 1, 50_000, 0.0)
    flow.finish_time = 1e-3
    stats = SlowdownStats.from_flows([flow], topo.network)
    assert stats.n_small == 1 and stats.n_large == 0
    assert math.isnan(stats.large_avg)  # the raw stat stays NaN...
    row = stats.row()
    assert row["large_slowdown_avg"] == "n=0"  # ...the rendering doesn't
    assert row["small_slowdown_avg"] != "n=0"
    empty = SlowdownStats.from_flows([], topo.network).row()
    assert empty["slowdown_avg"] == "n=0"
    assert empty["small_slowdown_p99"] == "n=0"
