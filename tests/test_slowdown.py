"""Tests for the FCT-slowdown metric."""

import math

import pytest

from conftest import make_ctx, make_star, run_single_flow
from repro.core.ppt import Ppt
from repro.metrics.slowdown import SlowdownStats, ideal_fct
from repro.transport.base import Flow
from repro.transport.dctcp import Dctcp


def test_ideal_fct_components():
    topo = make_star()
    flow = Flow(0, 0, 1, 143_600, 0.0)  # 100 payload packets
    ideal = ideal_fct(flow, topo.network)
    base = topo.network.base_delay(0, 1)
    assert ideal > base
    serialization = ideal - base
    expected = 143_600 * (1 + 64 / 1436) * 8 / topo.edge_rate
    assert serialization == pytest.approx(expected)


def test_solo_flow_slowdown_near_one():
    """An uncontended NDP-style ideal case: DCTCP solo still pays slow
    start, so its slowdown is >1 but bounded for a BDP-scale flow."""
    flow, ctx, topo = run_single_flow(Dctcp(), 150_000, until=2.0)
    stats = SlowdownStats.from_flows([flow], topo.network)
    assert stats.n_flows == 1
    assert 1.0 <= stats.overall_avg <= 10.0


def test_ppt_slowdown_below_dctcp_solo():
    f_d, _, topo_d = run_single_flow(Dctcp(), 80_000)
    f_p, _, topo_p = run_single_flow(Ppt(), 80_000)
    s_d = SlowdownStats.from_flows([f_d], topo_d.network)
    s_p = SlowdownStats.from_flows([f_p], topo_p.network)
    assert s_p.overall_avg < s_d.overall_avg


def test_incomplete_flows_ignored():
    topo = make_star()
    stats = SlowdownStats.from_flows([Flow(0, 0, 1, 1000, 0.0)],
                                     topo.network)
    assert stats.n_flows == 0
    assert math.isnan(stats.overall_avg)


def test_slowdown_floor_is_one():
    """Measurement noise can make fct marginally under ideal (ideal uses
    the full serialization including overhead); slowdown is clamped."""
    topo = make_star()
    flow = Flow(0, 0, 1, 1000, 0.0)
    flow.finish_time = 1e-9  # absurdly fast
    stats = SlowdownStats.from_flows([flow], topo.network)
    assert stats.overall_avg == 1.0


def test_row_keys():
    flow, ctx, topo = run_single_flow(Dctcp(), 150_000, until=2.0)
    row = SlowdownStats.from_flows([flow], topo.network).row()
    assert set(row) == {"flows", "slowdown_avg", "slowdown_p99",
                        "small_slowdown_avg", "small_slowdown_p99",
                        "large_slowdown_avg"}
