"""Tests for the command-line interface."""

import pytest

from repro.cli import FIGURES, SCHEME_FACTORIES, build_parser, main


def test_list_schemes(capsys):
    assert main(["list-schemes"]) == 0
    out = capsys.readouterr().out
    for name in ("ppt", "dctcp", "homa", "ndp", "expresspass"):
        assert name in out


def test_list_workloads(capsys):
    assert main(["list-workloads"]) == 0
    out = capsys.readouterr().out
    assert "web-search" in out
    assert "data-mining" in out


def test_tables(capsys):
    assert main(["tables"]) == 0
    out = capsys.readouterr().out
    assert "Table 1" in out and "PPT" in out
    assert "Table 3" in out and "RTO_min" in out


def test_run_small(capsys):
    assert main(["run", "--schemes", "dctcp", "--flows", "10",
                 "--size-cap", "200000"]) == 0
    out = capsys.readouterr().out
    assert "dctcp" in out
    assert "10/10" in out


def test_run_incast_pattern(capsys):
    assert main(["run", "--schemes", "dctcp", "--flows", "8",
                 "--pattern", "incast", "--incast-senders", "4",
                 "--size-cap", "100000"]) == 0
    assert "8/8" in capsys.readouterr().out


def test_figure_identification(capsys):
    assert main(["figure", "sec41"]) == 0
    out = capsys.readouterr().out
    assert "memcached" in out


def test_every_scheme_factory_constructs():
    for name, factory in SCHEME_FACTORIES.items():
        scheme = factory()
        assert hasattr(scheme, "start_flow"), name


def test_every_figure_registered_is_callable():
    for name, fn in FIGURES.items():
        assert callable(fn), name


def test_parser_rejects_unknown_scheme():
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args(["run", "--schemes", "not-a-scheme"])


def test_parser_rejects_unknown_figure():
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args(["figure", "fig99"])
