"""Tests for the packet-trace instrumentation."""

import math

from conftest import make_ctx, make_star
from repro.sim.network import QueueConfig
from repro.sim.topology import star
from repro.sim.trace import DropTracer, MarkTracer
from repro.transport.base import Flow
from repro.transport.dctcp import Dctcp
from repro.core.ppt import Ppt
from repro.units import gbps, us


def lossy_topo():
    qcfg = QueueConfig(buffer_bytes=15_000)
    return star(3, rate=gbps(40), prop_delay=us(4), qcfg=qcfg)


def test_drop_tracer_records_drops():
    topo = lossy_topo()
    tracer = DropTracer.attach(topo.network)
    ctx = make_ctx(topo)
    scheme = Dctcp()
    flows = [Flow(0, 0, 2, 200_000, 0.0), Flow(1, 1, 2, 200_000, 0.0)]
    for f in flows:
        scheme.start_flow(f, ctx)
    topo.sim.run(until=2.0)
    assert len(tracer) == topo.network.total_drops()
    assert len(tracer) > 0
    record = tracer.records[0]
    assert record.port
    assert record.flow_id in (0, 1)


def test_drop_tracer_summaries():
    topo = lossy_topo()
    tracer = DropTracer.attach(topo.network)
    ctx = make_ctx(topo)
    scheme = Dctcp()
    flows = [Flow(0, 0, 2, 200_000, 0.0), Flow(1, 1, 2, 200_000, 0.0)]
    for f in flows:
        scheme.start_flow(f, ctx)
    topo.sim.run(until=2.0)
    by_priority = tracer.summary_by_priority()
    assert sum(by_priority.values()) == len(tracer)
    by_port = tracer.summary_by_port()
    assert sum(by_port.values()) == len(tracer)
    by_kind = tracer.summary_by_kind()
    assert by_kind.get("DATA", 0) == len(tracer)  # only data dropped here
    per_flow = (len(tracer.drops_for_flow(0)) + len(tracer.drops_for_flow(1)))
    assert per_flow == len(tracer)


def test_drop_tracer_lcp_share():
    topo = lossy_topo()
    tracer = DropTracer.attach(topo.network)
    ctx = make_ctx(topo)
    scheme = Ppt()
    flows = [Flow(0, 0, 2, 200_000, 0.0), Flow(1, 1, 2, 200_000, 0.0)]
    for f in flows:
        scheme.start_flow(f, ctx)
    topo.sim.run(until=2.0)
    share = tracer.lcp_share()
    assert 0.0 <= share <= 1.0


def test_drop_tracer_empty_lcp_share_nan():
    topo = make_star(3)
    tracer = DropTracer.attach(topo.network)
    assert math.isnan(tracer.lcp_share())


def test_mark_tracer_counts_new_marks_only():
    topo = make_star(3)
    ctx = make_ctx(topo)
    scheme = Dctcp()
    flow = Flow(0, 0, 2, 1_000_000, 0.0)
    scheme.start_flow(flow, ctx)
    topo.sim.run(until=0.5)
    tracer = MarkTracer(topo.network)  # baseline after the first run
    assert tracer.total() == 0
    flow2 = Flow(1, 1, 2, 1_000_000, 0.0)
    scheme.start_flow(flow2, ctx)
    topo.sim.run(until=2.0)
    assert tracer.total() == (topo.network.total_marked()
                              - sum(tracer._baseline.values()))
