"""PPT receiver edge cases: duplicate/odd LP arrivals, mixed ordering."""

from conftest import make_ctx, make_star
from repro.core.ppt import PptReceiver
from repro.sim.packet import Packet
from repro.transport.base import Flow


def make_receiver(size=200_000):
    topo = make_star()
    ctx = make_ctx(topo)
    receiver = PptReceiver(Flow(0, 0, 1, size, 0.0), ctx)
    captured = []
    ctx.network.send_control = captured.append
    return receiver, captured, ctx, topo


def lp(seq, ce=False):
    pkt = Packet(0, 0, 1, seq, 1500)
    pkt.lcp = True
    pkt.ecn_ce = ce
    return pkt


def hp(seq, ce=False):
    pkt = Packet(0, 0, 1, seq, 1500)
    pkt.ecn_ce = ce
    return pkt


def test_odd_lp_packet_leaves_pending_ack():
    receiver, captured, ctx, topo = make_receiver()
    receiver.on_packet(lp(10))
    assert receiver.lp_acks_sent == 0       # waiting for the pair
    receiver.on_packet(lp(11))
    assert receiver.lp_acks_sent == 1


def test_duplicate_lp_still_counts_toward_pair():
    """A duplicate LP arrival is acknowledged (the kernel ACKs what it
    receives) even though delivery is deduplicated."""
    receiver, captured, ctx, topo = make_receiver()
    receiver.on_packet(lp(10))
    receiver.on_packet(lp(10))
    assert receiver.lp_acks_sent == 1
    assert len(receiver.delivered) == 1
    assert receiver.dup_pkts_received == 1


def test_mixed_hp_lp_completion():
    receiver, captured, ctx, topo = make_receiver(size=4308)  # 3 packets
    receiver.on_packet(hp(0))
    receiver.on_packet(lp(2))
    assert not receiver.done
    receiver.on_packet(lp(1))
    assert receiver.done
    assert len(ctx.completed) == 1


def test_hp_acks_unaffected_by_lp_pending():
    """High-priority packets always get their own immediate ACK (the
    standard DCTCP path is isolated from the 2:1 LP rule)."""
    receiver, captured, ctx, topo = make_receiver()
    receiver.on_packet(lp(50))       # one pending LP, no LP-ACK yet
    receiver.on_packet(hp(0))
    hp_acks = [a for a in captured if not a.lcp]
    assert len(hp_acks) == 1
    assert hp_acks[0].ack_seq == 1


def test_lp_ack_cum_reflects_hp_progress():
    receiver, captured, ctx, topo = make_receiver()
    for seq in range(4):
        receiver.on_packet(hp(seq))
    receiver.on_packet(lp(40))
    receiver.on_packet(lp(41))
    lp_acks = [a for a in captured if a.lcp]
    assert lp_acks[-1].ack_seq == 4  # cumulative point includes HP data


def test_ce_flag_reset_after_each_lp_ack():
    receiver, captured, ctx, topo = make_receiver()
    receiver.on_packet(lp(10, ce=True))
    receiver.on_packet(lp(11))
    receiver.on_packet(lp(12))
    receiver.on_packet(lp(13))
    lp_acks = [a for a in captured if a.lcp]
    assert lp_acks[0].ecn_ce is True
    assert lp_acks[1].ecn_ce is False  # the mark does not leak forward


def test_odd_tail_flushed_by_delayed_ack_timer():
    """The last LP packet of an odd-count batch must be acknowledged by
    the delayed-ACK timer, not stranded until the sender's RTO."""
    receiver, captured, ctx, topo = make_receiver()
    receiver.on_packet(lp(10))
    assert receiver.lp_acks_sent == 0        # still waiting for the pair
    # run only to 1.5x the delayed-ACK delay — well under min_rto, so an
    # ACK here can only have come from the flush timer
    assert ctx.config.lp_ack_delay * 1.5 < ctx.config.min_rto
    topo.sim.run(until=ctx.config.lp_ack_delay * 1.5)
    assert receiver.lp_acks_sent == 1
    [ack] = [a for a in captured if a.lcp]
    assert ack.sack == (10,)


def test_delayed_flush_cancelled_when_pair_arrives():
    """The pair completing the 2:1 rule cancels the pending timer — no
    duplicate ACK fires later."""
    receiver, captured, ctx, topo = make_receiver()
    receiver.on_packet(lp(10))
    receiver.on_packet(lp(11))
    assert receiver.lp_acks_sent == 1
    topo.sim.run(until=ctx.config.lp_ack_delay * 4)
    assert receiver.lp_acks_sent == 1        # timer did not double-ACK
    assert receiver._lp_flush_event is None


def test_completion_via_lp_path_flushes_pending_tail():
    receiver, captured, ctx, topo = make_receiver(size=4308)  # 3 packets
    receiver.on_packet(hp(0))
    receiver.on_packet(hp(1))
    receiver.on_packet(lp(2))                # completes the flow, odd tail
    assert receiver.done
    [ack] = [a for a in captured if a.lcp]
    assert ack.sack == (2,)                  # flushed at completion...
    assert receiver._lp_flush_event is None  # ...with no timer left armed


def test_completion_via_hp_path_flushes_pending_tail():
    receiver, captured, ctx, topo = make_receiver(size=4308)  # 3 packets
    receiver.on_packet(lp(2))                # odd tail arrives first
    receiver.on_packet(hp(0))
    receiver.on_packet(hp(1))                # completes via the HP path
    assert receiver.done
    assert [a.sack for a in captured if a.lcp] == [(2,)]
    assert receiver._lp_flush_event is None
