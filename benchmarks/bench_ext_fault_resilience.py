"""Extension: transport resilience to a mid-run link flap.

Not a paper figure — the paper evaluates PPT on healthy fabrics.  This
benchmark injects the classic datacenter failure mode (a flapping
leaf-to-spine uplink) into the §6.2-shaped scaled fabric and compares
how PPT, DCTCP and Homa ride it out under an *identical* deterministic
fault plan: leaf0's uplinks to both spines flap twice while the
web-search workload is in flight, so every cross-leaf flow from leaf0
loses its path repeatedly for a blackout much shorter than the RTO cap.

Expectation: all three transports recover (no stalls, every flow
completes) — the window schemes via RTO backoff + fast retransmit,
Homa via its timeout-driven resend — and the health layer reports the
fault windows and the recovery work (drops, retransmits) per scheme.
"""

from conftest import by_scheme, run_figure
from repro.core.ppt import Ppt
from repro.experiments.runner import run
from repro.experiments.scenarios import (
    HOMA_RTT_BYTES_SIM,
    all_to_all_scenario,
)
from repro.faults import FaultPlan, LinkFlap
from repro.transport.dctcp import Dctcp
from repro.transport.homa import Homa
from repro.workloads.distributions import WEB_SEARCH

N_FLOWS = 150

# Both of leaf0's uplinks flap together: 0.5ms down, 0.5ms up, twice,
# starting while the workload's first wave is in flight (traffic spans
# roughly 0-2.7ms at this load).
FLAP_PLAN = FaultPlan([
    LinkFlap("leaf0->spine*", start=0.0003, down_time=0.0005,
             up_time=0.0005, cycles=2),
], seed=1)


def _schemes():
    return [Ppt(), Dctcp(), Homa(rtt_bytes=HOMA_RTT_BYTES_SIM)]


def _run_fault_resilience():
    faulty = all_to_all_scenario("ext-flap", WEB_SEARCH, load=0.5,
                                 n_flows=N_FLOWS, faults=FLAP_PLAN)
    healthy = all_to_all_scenario("ext-flap-baseline", WEB_SEARCH, load=0.5,
                                  n_flows=N_FLOWS)
    rows = []
    for scheme in _schemes():
        base = run(scheme, healthy)
        result = run(scheme, faulty)
        h = result.health
        rows.append({
            "scheme": scheme.name,
            "completed": f"{h.completed}/{h.n_flows}",
            "stalled": h.stalled,
            "fault_drops": h.fault_drops,
            "rtx": h.retransmits_total,
            "rtos": h.rtos_total,
            "overall_avg_ms": result.stats.overall_avg * 1e3,
            "small_p99_ms": result.stats.small_p99 * 1e3,
            "healthy_avg_ms": base.stats.overall_avg * 1e3,
            "_ok": h.ok,
            "_completion_rate": h.completion_rate,
            "_windows": len(h.fault_windows),
        })
    return {"rows": rows}


def test_fault_resilience(benchmark):
    result = run_figure(benchmark,
                        "Extension: link-flap resilience (PPT/DCTCP/Homa)",
                        _run_fault_resilience)
    rows = by_scheme(result["rows"])
    assert set(rows) == {"ppt", "dctcp", "homa"}
    for name, row in rows.items():
        # the flap really hit the fabric...
        assert row["_windows"] == 2, name  # one window per flapped uplink
        assert row["fault_drops"] > 0, name
        # ...and every transport rode it out: blackouts far below the RTO
        # cap must never stall a run or strand a flow
        assert row["_ok"], name
        assert row["_completion_rate"] == 1.0, name
        # recovery is visible as extra work relative to the healthy run
        assert row["overall_avg_ms"] >= row["healthy_avg_ms"], name
    # the window schemes recover through the counted retransmit paths
    for name in ("ppt", "dctcp"):
        assert rows[name]["rtx"] + rows[name]["rtos"] > 0, name
