"""Extension: sensitivity of the headline result to the buffer-sharing
model — the main modelling choice DESIGN.md calls out.

Three port-buffer models, same web-search scenario:

* ``scavenger`` (default everywhere): dynamic thresholds with alpha=8
  for P0-P3 and alpha=1 for the lossy P4-P7 — commodity switches with a
  scavenger-class profile for opportunistic queues;
* ``uniform``: one alpha for every queue (no scavenger profile);
* ``tail-drop``: no dynamic thresholds at all (closest to the paper's
  ns-3 queues).

The claim checked: PPT beats DCTCP under *every* buffer model — the
reproduction's headline is not an artefact of the buffer-sharing choice —
and the scavenger profile is the kindest to PPT's small flows (it stops
opportunistic excess earliest), which is why it is the default.
"""

from conftest import run_figure
from repro.core.ppt import Ppt
from repro.experiments.runner import run
from repro.experiments.scenarios import all_to_all_scenario, sim_fabric, sim_qcfg
from repro.sim.trace import DropTracer
from repro.transport.dctcp import Dctcp
from repro.workloads.distributions import WEB_SEARCH

MODELS = {
    "scavenger": (8.0, 8.0, 8.0, 8.0, 1.0, 1.0, 1.0, 1.0),
    "uniform": 8.0,
    "tail-drop": None,
}


def _run_models():
    rows = []
    for model, alpha in MODELS.items():
        fabric = sim_fabric(qcfg=sim_qcfg(dt_alpha=alpha))
        scenario = all_to_all_scenario(f"bufmodel-{model}", WEB_SEARCH,
                                       load=0.5, n_flows=150, fabric=fabric)
        for scheme in (Dctcp(), Ppt()):
            tracer_holder = {}

            def instruments(topo):
                tracer_holder["t"] = DropTracer.attach(topo.network)
                return None

            result = run(scheme, scenario, instruments=instruments)
            stats = result.stats
            rows.append({
                "buffer_model": model,
                "scheme": scheme.name,
                "overall_avg_ms": stats.overall_avg * 1e3,
                "small_avg_ms": stats.small_avg * 1e3,
                "small_p99_ms": stats.small_p99 * 1e3,
                "drops": len(tracer_holder["t"]),
                "completed": result.completed,
            })
    return {"rows": rows}


def test_buffer_model_sensitivity(benchmark):
    result = run_figure(benchmark, "Extension: buffer-model sensitivity",
                        _run_models)
    data = {(r["buffer_model"], r["scheme"]): r for r in result["rows"]}
    assert all(r["completed"] == 150 for r in result["rows"])
    for model in MODELS:
        ppt = data[(model, "ppt")]
        dctcp = data[(model, "dctcp")]
        # the headline survives every buffer model
        assert ppt["overall_avg_ms"] < dctcp["overall_avg_ms"], model
        assert ppt["small_avg_ms"] < dctcp["small_avg_ms"], model
    # the scavenger profile protects PPT's small flows at least as well
    # as the alternatives
    scav = data[("scavenger", "ppt")]["small_p99_ms"]
    assert scav <= data[("uniform", "ppt")]["small_p99_ms"] * 1.05
    assert scav <= data[("tail-drop", "ppt")]["small_p99_ms"] * 1.05
