"""Tables 1-3: the design-space comparison, workload statistics and
testbed parameters."""

from conftest import run_figure
from repro.experiments import tables
from repro.experiments.runner import format_table


def test_table1_design_space(benchmark):
    rows = benchmark.pedantic(tables.table1, rounds=1, iterations=1)
    print("\n=== Table 1: prior transports vs PPT ===")
    print(format_table(rows))
    ppt = next(r for r in rows if r["scheme"] == "PPT")
    # PPT is the only row that is graceful + schedules without flow size
    # + commodity + TCP/IP-compatible + non-intrusive.
    assert ppt["spare_bw_pattern"] == "graceful"
    assert ppt["sched_wo_flow_size"] == "yes"
    assert ppt["commodity_switches"] == "yes"
    assert ppt["tcpip_compatible"] == "yes"
    assert ppt["non_intrusive"] == "yes"
    full_marks = [r for r in rows
                  if r["sched_wo_flow_size"] == "yes"
                  and r["spare_bw_pattern"] == "graceful"]
    assert [r["scheme"] for r in full_marks] == ["PPT"]


def test_table2_workload_statistics(benchmark):
    rows = benchmark.pedantic(tables.table2, rounds=1, iterations=1)
    print("\n=== Table 2: flow size distributions ===")
    print(format_table(rows))
    ws = next(r for r in rows if r["workload"] == "web-search")
    dm = next(r for r in rows if r["workload"] == "data-mining")
    # paper: 62%/38% and 1.6MB; 83%/17% and 7.41MB
    assert ws["short_flows_0_100KB"] in ("61%", "62%", "63%")
    assert dm["short_flows_0_100KB"] in ("82%", "83%", "84%")
    assert 1.2 <= ws["average_size_MB"] <= 1.8
    assert 6.0 <= dm["average_size_MB"] <= 9.0


def test_table3_testbed_parameters(benchmark):
    rows = benchmark.pedantic(tables.table3, rounds=1, iterations=1)
    print("\n=== Table 3: testbed parameters ===")
    print(format_table(rows))
    params = {r["parameter"]: r["setting"] for r in rows}
    assert params["RTO_min"] == "10ms"
    assert params["RTTbytes for Homa"] == "50KB"
    assert params["LCP's ECN threshold"] == "80KB"
