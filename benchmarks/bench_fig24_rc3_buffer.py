"""Fig. 24 — RC3 still loses to PPT when its low-priority queues get
only a capped share of the switch buffer.

Paper: across 20-80% LP-buffer caps, PPT reduces the overall average FCT
by up to 71% and the small avg/tail by 73%/75% vs RC3 — capping the
buffer does not fix RC3 because its LP loop never protects the HP loop.
"""

from conftest import run_figure
from repro.experiments.figures import fig24_rc3_lp_buffer


def test_fig24_rc3_lp_buffer_cap(benchmark):
    result = run_figure(benchmark, "Fig 24: RC3 with capped LP buffer",
                        fig24_rc3_lp_buffer)
    ppt = next(r for r in result["rows"] if r["scheme"] == "ppt")
    rc3_rows = [r for r in result["rows"] if r["scheme"] == "rc3"]
    assert len(rc3_rows) == 3
    for row in rc3_rows:
        frac = row["lp_buffer_fraction"]
        assert ppt["overall_avg_ms"] < row["overall_avg_ms"], frac
        assert ppt["small_avg_ms"] < row["small_avg_ms"], frac
        assert ppt["small_p99_ms"] < row["small_p99_ms"], frac
