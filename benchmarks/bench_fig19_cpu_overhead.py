"""Fig. 19 — kernel datapath (CPU) overhead of PPT vs DCTCP.

Paper: PPT's CPU usage exceeds DCTCP's by less than 1 percentage point,
and the *relative* gap shrinks as the load grows (more load = less spare
bandwidth = fewer opportunistic packets per unit of useful work).

Our proxy counts datapath operations per host per second (DESIGN.md §2).
Shape asserted: small absolute gap at every load; relative gap
non-increasing from the lightest to the heaviest load.
"""

from conftest import run_figure
from repro.experiments.figures import fig19_cpu_overhead


def test_fig19_cpu_overhead(benchmark):
    result = run_figure(benchmark, "Fig 19: datapath overhead proxy",
                        fig19_cpu_overhead)
    rows = result["rows"]
    relative = []
    for row in rows:
        assert row["gap_pct"] < 2.5, f"load={row['load']}: gap too large"
        assert row["ppt_cpu_pct"] >= row["dctcp_cpu_pct"] * 0.95
        relative.append(row["gap_pct"] / row["dctcp_cpu_pct"])
    # the share of extra work shrinks with load (paper's key observation)
    assert relative[-1] < relative[0]
