"""Perf ratchet: fail when engine throughput regresses past the budget.

Compares a freshly measured ``BENCH_core_engine.json`` against the
checked-in baseline at the repo root and exits non-zero when any gated
probe's events/sec falls below ``threshold`` times the baseline.  The
default gates are ``dctcp-incast`` (the full-datapath number that
bounds experiment wall time) and ``leaf-spine`` (the multi-hop ECMP
forwarding path, which exercises the switch selection code the
load-balancer seam hangs off), both at 0.75x — a 25% allowance for
runner noise (the checked-in baseline and CI run on different
hardware, so the gates catch structural regressions, not jitter).

Usage (what CI runs)::

    python benchmarks/perf_ratchet.py \
        --baseline BENCH_core_engine.json \
        --fresh bench-out/BENCH_core_engine.json

Raising the checked-in baseline after an optimisation lands tightens
the ratchet for every commit after it.
"""

import argparse
import json
import sys

DEFAULT_BENCHES = ("dctcp-incast", "leaf-spine")


def rows_by_bench(path):
    with open(path) as fh:
        payload = json.load(fh)
    return {row["bench"]: row for row in payload["rows"]}


def check(baseline_path, fresh_path, bench="dctcp-incast", threshold=0.75):
    """Returns (ok, message) comparing one probe across the two files."""
    baseline = rows_by_bench(baseline_path)
    fresh = rows_by_bench(fresh_path)
    if bench not in baseline:
        return False, f"baseline {baseline_path} has no {bench!r} row"
    if bench not in fresh:
        return False, f"fresh results {fresh_path} have no {bench!r} row"
    base_eps = baseline[bench]["events_per_sec"]
    fresh_eps = fresh[bench]["events_per_sec"]
    floor = threshold * base_eps
    ratio = fresh_eps / base_eps if base_eps else float("inf")
    message = (f"{bench}: fresh {fresh_eps:,.0f} ev/s vs baseline "
               f"{base_eps:,.0f} ev/s ({ratio:.2f}x, floor {threshold:.2f}x)")
    return fresh_eps >= floor, message


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", default="BENCH_core_engine.json",
                        help="checked-in baseline JSON (repo root)")
    parser.add_argument("--fresh", required=True,
                        help="freshly measured JSON to gate")
    parser.add_argument("--bench", action="append", default=None,
                        help="probe row to gate on (repeatable; default: "
                             + ", ".join(DEFAULT_BENCHES) + ")")
    parser.add_argument("--threshold", type=float, default=0.75,
                        help="minimum fresh/baseline events-per-sec ratio")
    args = parser.parse_args(argv)
    benches = args.bench or list(DEFAULT_BENCHES)
    failures = 0
    for bench in benches:
        ok, message = check(args.baseline, args.fresh,
                            bench=bench, threshold=args.threshold)
        print(("OK      " if ok else "REGRESSED ") + message)
        if not ok:
            failures += 1
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
