"""Perf ratchet: fail when engine throughput regresses past the budget.

Compares a freshly measured ``BENCH_core_engine.json`` against the
checked-in baseline at the repo root and exits non-zero when any gated
probe's metric falls below ``threshold`` times the baseline.  The
default gates are ``dctcp-incast`` (the full-datapath number that
bounds experiment wall time), ``leaf-spine`` (the multi-hop ECMP
forwarding path, which exercises the switch selection code the
load-balancer seam hangs off), and ``hybrid-soak`` (the flow-level
fast path's simulated-flow-hours-per-wall-second on a heavy-traffic
scenario — the ratchet that keeps the hybrid speedup honest), each at
0.75x — a 25% allowance for runner noise (the checked-in baseline and
CI run on different hardware, so the gates catch structural
regressions, not jitter).

Usage (what CI runs)::

    python benchmarks/perf_ratchet.py \
        --baseline BENCH_core_engine.json \
        --fresh bench-out/BENCH_core_engine.json

Raising the checked-in baseline after an optimisation lands tightens
the ratchet for every commit after it.
"""

import argparse
import json
import sys

#: bench name -> the row metric the ratchet gates on.  Engine probes
#: gate on raw event throughput; the hybrid probe's entire point is
#: simulated flow-hours per wall-second, so that is what it gates on.
GATED_METRICS = {
    "dctcp-incast": "events_per_sec",
    "leaf-spine": "events_per_sec",
    "hybrid-soak": "flow_hours_per_sec",
    # aggregate events/sec of the 4-way space-sharded 1024-host run:
    # keeps the window protocol's synchronization overhead honest even
    # on single-core runners, where speedup over serial is meaningless
    # but absolute throughput still ratchets
    "sharded-leaf-spine": "events_per_sec",
}
DEFAULT_METRIC = "events_per_sec"
DEFAULT_BENCHES = ("dctcp-incast", "leaf-spine", "hybrid-soak",
                   "sharded-leaf-spine")


class RatchetError(RuntimeError):
    """A results file is missing, malformed, or lacks a gated row."""


def rows_by_bench(path):
    try:
        with open(path) as fh:
            payload = json.load(fh)
    except OSError as exc:
        raise RatchetError(f"cannot read bench results {path}: {exc}") from exc
    except ValueError as exc:
        raise RatchetError(f"{path} is not valid JSON: {exc}") from exc
    if not isinstance(payload, dict) or "rows" not in payload:
        raise RatchetError(
            f"{path} is not a bench results file: expected a JSON object "
            f"with a 'rows' list (regenerate with "
            f"benchmarks/bench_core_engine.py)")
    rows = {}
    for i, row in enumerate(payload["rows"]):
        if not isinstance(row, dict) or "bench" not in row:
            raise RatchetError(
                f"{path}: rows[{i}] has no 'bench' name "
                f"(got {row!r}); the file is malformed")
        rows[row["bench"]] = row
    return rows


def _metric(row, bench, path):
    key = GATED_METRICS.get(bench, DEFAULT_METRIC)
    if key not in row:
        raise RatchetError(
            f"{path}: the {bench!r} row has no {key!r} metric "
            f"(keys: {sorted(row)}); re-run the benchmark with a build "
            f"that records it")
    return key, row[key]


def check(baseline_path, fresh_path, bench="dctcp-incast", threshold=0.75):
    """Returns (ok, message) comparing one probe across the two files."""
    baseline = rows_by_bench(baseline_path)
    fresh = rows_by_bench(fresh_path)
    if bench not in baseline:
        return False, (
            f"baseline {baseline_path} has no {bench!r} row "
            f"(has: {', '.join(sorted(baseline)) or 'none'}); add one by "
            f"running benchmarks/bench_core_engine.py and checking the "
            f"row in")
    if bench not in fresh:
        return False, (
            f"fresh results {fresh_path} have no {bench!r} row "
            f"(has: {', '.join(sorted(fresh)) or 'none'}); the benchmark "
            f"run that produced the file skipped this probe")
    key, base_value = _metric(baseline[bench], bench, baseline_path)
    _, fresh_value = _metric(fresh[bench], bench, fresh_path)
    floor = threshold * base_value
    ratio = fresh_value / base_value if base_value else float("inf")
    unit = "flow-h/s" if key == "flow_hours_per_sec" else "ev/s"
    message = (f"{bench}: fresh {fresh_value:,.0f} {unit} vs baseline "
               f"{base_value:,.0f} {unit} ({ratio:.2f}x, "
               f"floor {threshold:.2f}x)")
    return fresh_value >= floor, message


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", default="BENCH_core_engine.json",
                        help="checked-in baseline JSON (repo root)")
    parser.add_argument("--fresh", required=True,
                        help="freshly measured JSON to gate")
    parser.add_argument("--bench", action="append", default=None,
                        help="probe row to gate on (repeatable; default: "
                             + ", ".join(DEFAULT_BENCHES) + ")")
    parser.add_argument("--threshold", type=float, default=0.75,
                        help="minimum fresh/baseline metric ratio")
    args = parser.parse_args(argv)
    benches = args.bench or list(DEFAULT_BENCHES)
    failures = 0
    for bench in benches:
        try:
            ok, message = check(args.baseline, args.fresh,
                                bench=bench, threshold=args.threshold)
        except RatchetError as exc:
            ok, message = False, str(exc)
        print(("OK      " if ok else "REGRESSED ") + message)
        if not ok:
            failures += 1
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
