"""Fig. 1 — DCTCP's link utilisation fluctuates well below the offered
load (the under-utilisation that motivates PPT).

Paper: at 0.5 load the bottleneck's utilisation oscillates between ~25%
and ~50%.  Shape asserted: the average stays below the ideal, with deep
dips and near-line-rate peaks.
"""

from conftest import run_figure
from repro.experiments.figures import fig01_link_utilization


def test_fig01_dctcp_underutilisation(benchmark):
    result = run_figure(benchmark, "Fig 1: DCTCP link utilisation",
                        fig01_link_utilization)
    row = result["rows"][0]
    ideal = result["ideal"]
    assert row["avg_utilization"] < ideal + 0.02   # cannot beat the load
    assert row["avg_utilization"] > 0.2            # but the link is used
    assert row["min_utilization"] < 0.3 * ideal    # deep dips exist
    assert row["max_utilization"] > 0.9            # transient line-rate peaks
