"""Appendix F / Fig. 28 — buffer occupancy under different ECN marking
thresholds: PPT's low-priority queue stays small and stable; RC3's is a
hog.

Paper: PPT needs ~20% less buffer than RC3; PPT's LP queue holds
2.6-3.1% of the total buffer vs RC3's 17.4-30.2%; PPT uses 10.8-17.4%
more buffer than DCTCP while delivering lower FCTs.
"""

from conftest import run_figure
from repro.experiments.figures import fig28_buffer_occupancy


def test_fig28_buffer_occupancy(benchmark):
    result = run_figure(benchmark, "Fig 28: buffer occupancy",
                        fig28_buffer_occupancy)
    data = {(r["scheme"], r["ecn_fraction"]): r for r in result["rows"]}
    fractions = sorted({r["ecn_fraction"] for r in result["rows"]})
    for fraction in fractions:
        dctcp = data[("dctcp", fraction)]
        rc3 = data[("rc3", fraction)]
        ppt = data[("ppt", fraction)]
        # PPT occupies less buffer than RC3 ...
        assert ppt["avg_total_bytes"] < rc3["avg_total_bytes"]
        # ... its LP queue is smaller than RC3's ...
        assert ppt["avg_low_bytes"] < rc3["avg_low_bytes"]
        # ... and it sits above DCTCP (which has no LP traffic at all)
        assert ppt["avg_total_bytes"] > dctcp["avg_total_bytes"]
        assert dctcp["avg_low_bytes"] == 0.0
