"""Extension: PPT's design as a building block for HPCC (appendix B).

The paper sketches this integration as an open direction: open an LCP
loop whenever HPCC's INT-estimated in-flight is below the BDP, and use
PPT's buffer-aware scheduling.  This benchmark runs our implementation
(:class:`repro.core.ppt_hpcc.PptHpcc`) against plain HPCC on the Fig-12
web-search scenario and checks the integration pays off, mirroring the
Fig-14 result for the Swift variant.
"""

from conftest import by_scheme, run_figure
from repro.core.ppt_hpcc import PptHpcc
from repro.experiments.runner import run
from repro.experiments.scenarios import all_to_all_scenario
from repro.transport.hpcc import Hpcc
from repro.workloads.distributions import WEB_SEARCH


def _run_pair():
    scenario = all_to_all_scenario("ext-hpcc", WEB_SEARCH, load=0.5,
                                   n_flows=150)
    rows = []
    for scheme in (Hpcc(), PptHpcc()):
        result = run(scheme, scenario)
        stats = result.stats
        rows.append({
            "scheme": scheme.name,
            "overall_avg_ms": stats.overall_avg * 1e3,
            "small_avg_ms": stats.small_avg * 1e3,
            "small_p99_ms": stats.small_p99 * 1e3,
            "large_avg_ms": stats.large_avg * 1e3,
            "completed": result.completed,
        })
    return {"rows": rows}


def test_ppt_over_hpcc(benchmark):
    result = run_figure(benchmark, "Extension: PPT over HPCC (appendix B)",
                        _run_pair)
    rows = by_scheme(result["rows"])
    assert all(r["completed"] == 150 for r in rows.values())
    base, variant = rows["hpcc"], rows["ppt-hpcc"]
    assert variant["overall_avg_ms"] < base["overall_avg_ms"]
    assert variant["small_p99_ms"] < base["small_p99_ms"]
