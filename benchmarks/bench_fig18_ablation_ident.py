"""Fig. 18 — PPT without buffer-aware identification (all flows start
unidentified at the top priority and age down).

Paper: the variant can have a *slightly lower* overall average (large
flows enjoy high priorities early) but loses 4.3%/31.9% on the small
avg/tail because large flows initially share the top queue with small
ones.  Shape asserted: the small-flow tail degrades without
identification; the overall average stays in the same ballpark.
"""

from conftest import by_scheme, run_figure
from repro.experiments.figures import fig18_ablation_identification


def test_fig18_no_identification(benchmark):
    result = run_figure(benchmark, "Fig 18: ablation - identification off",
                        fig18_ablation_identification)
    rows = by_scheme(result["rows"])
    full, ablated = rows["ppt"], rows["ppt-noident"]
    assert ablated["small_p99_ms"] > full["small_p99_ms"] * 1.1
    assert ablated["small_avg_ms"] >= full["small_avg_ms"]
    # overall within a modest band either way
    assert abs(ablated["overall_avg_ms"] - full["overall_avg_ms"]) \
        <= full["overall_avg_ms"] * 0.25
