"""Extension: the remaining Table-1 reactive/proactive baselines
(TCP-10, Halfback, ExpressPass, TIMELY) against PPT on the Fig-12
web-search scenario.

Not a paper figure — the paper's Table 1 classifies these schemes
qualitatively and cites prior measurements; this benchmark backs the
classification with numbers from our substrate:

* TCP-10 and Halfback fix only the *startup* phase, so they trail PPT
  (which also fills the queue-buildup phase and schedules flows);
* Halfback still beats TCP-10 for small flows (its pace-out is a
  first-RTT-only cousin of PPT's case-1 loop);
* ExpressPass wastes the first RTT waiting for credits;
* TIMELY and D2TCP converge over multiple RTTs without any scheduling;
* DCQCN starts at line rate (RDMA semantics) so its *overall* average is
  competitive, but without in-network priorities its small-flow tail is
  3x PPT's — exactly the "lack efficient flow scheduling" critique of
  appendix C.
"""

from conftest import by_scheme, run_figure
from repro.core.ppt import Ppt
from repro.experiments.runner import run
from repro.experiments.scenarios import all_to_all_scenario
from repro.transport.d2tcp import D2tcp
from repro.transport.dcqcn import Dcqcn
from repro.transport.expresspass import ExpressPass
from repro.transport.halfback import Halfback
from repro.transport.tcp10 import Tcp10
from repro.transport.timely import Timely
from repro.workloads.distributions import WEB_SEARCH


def _run_baselines():
    scenario = all_to_all_scenario("ext-baselines", WEB_SEARCH, load=0.5,
                                   n_flows=150)
    rows = []
    for scheme in (Tcp10(), Halfback(), ExpressPass(), Timely(), D2tcp(),
                   Dcqcn(), Ppt()):
        result = run(scheme, scenario)
        stats = result.stats
        rows.append({
            "scheme": scheme.name,
            "overall_avg_ms": stats.overall_avg * 1e3,
            "small_avg_ms": stats.small_avg * 1e3,
            "small_p99_ms": stats.small_p99 * 1e3,
            "large_avg_ms": stats.large_avg * 1e3,
            "completed": result.completed,
        })
    return {"rows": rows}


def test_table1_reactive_baselines(benchmark):
    result = run_figure(benchmark, "Extension: Table 1 baselines vs PPT",
                        _run_baselines)
    rows = by_scheme(result["rows"])
    assert all(r["completed"] == 150 for r in rows.values())
    ppt = rows["ppt"]
    # PPT beats every converge-from-below baseline overall
    for other in ("tcp10", "halfback", "expresspass", "timely", "d2tcp"):
        assert ppt["overall_avg_ms"] < rows[other]["overall_avg_ms"], other
    # DCQCN's line-rate start makes its overall average competitive, but
    # scheduling-free transports lose the small-flow latency race
    for other in ("tcp10", "halfback", "expresspass", "timely", "d2tcp",
                  "dcqcn"):
        assert ppt["small_avg_ms"] < rows[other]["small_avg_ms"], other
        assert ppt["small_p99_ms"] < rows[other]["small_p99_ms"], other
    # Halfback's pace-out helps small flows relative to TCP-10
    assert rows["halfback"]["small_avg_ms"] < rows["tcp10"]["small_avg_ms"]
