"""Shared helpers for the benchmark harness.

Every benchmark runs its figure's experiment exactly once
(``benchmark.pedantic(rounds=1, iterations=1)``) — the interesting output
is the regenerated table, not the wall time — then prints the same rows
the paper's figure reports and asserts the reproduced *shape*.
"""

from __future__ import annotations

from typing import Callable, List

from repro.experiments.runner import format_table


def run_figure(benchmark, title: str, fn: Callable, **kwargs) -> dict:
    """Execute a figure driver under pytest-benchmark and print its rows."""
    result = benchmark.pedantic(lambda: fn(**kwargs), rounds=1, iterations=1)
    print(f"\n=== {title} ===")
    print(format_table(result["rows"]))
    return result


def by_scheme(rows: List[dict], key: str = "scheme") -> dict:
    """Index rows by scheme name (last row wins for duplicates)."""
    return {row[key]: row for row in rows}
