"""Fig. 14 — PPT's design grafted onto a delay-based (Swift-like)
transport.

Paper: the variant reduces the overall average FCT by 16.7%, the small
avg/tail by 56.5%/72.1% and the large average by 11% vs the original
delay-based transport.  Shape asserted: improvement on all four metrics.
"""

from conftest import by_scheme, run_figure
from repro.experiments.figures import fig14_delay_based


def test_fig14_ppt_over_swift(benchmark):
    result = run_figure(benchmark, "Fig 14: PPT over delay-based transport",
                        fig14_delay_based)
    rows = by_scheme(result["rows"])
    swift, variant = rows["swift"], rows["ppt-swift"]
    assert variant["overall_avg_ms"] < swift["overall_avg_ms"]
    assert variant["small_avg_ms"] < swift["small_avg_ms"]
    assert variant["small_p99_ms"] < swift["small_p99_ms"]
    assert variant["large_avg_ms"] < swift["large_avg_ms"] * 1.02
