"""§4.1 — buffer-aware identification accuracy on app-shaped traces.

Paper: 86.7% of >1KB Memcached (ETC) flows and 84.3% of >10KB web-server
flows identified by the first-syscall test with a 16KB send buffer.
"""

from conftest import run_figure
from repro.experiments.figures import sec41_identification_accuracy


def test_identification_accuracy(benchmark):
    result = run_figure(benchmark, "§4.1 identification accuracy",
                        sec41_identification_accuracy)
    assert 0.80 <= result["memcached"] <= 0.93   # paper: 0.867
    assert 0.78 <= result["web"] <= 0.92         # paper: 0.843
