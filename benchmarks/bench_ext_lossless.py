"""Extension: lossless Ethernet (PFC) and flowlet/CONGA load balancing.

Not a paper figure — PPT itself runs on a lossy fabric.  This benchmark
characterises the two RoCEv2-era fabric features this repo models on
top of the paper's leaf-spine:

1. **PFC lossless vs lossy** — DCQCN and HPCC on the same heavy incast
   with and without PFC.  With PFC on, the lossless class must show
   *zero* drops while pauses demonstrably fire; without it the same
   offered load tail-drops.
2. **Load balancers** — per-flow ECMP vs flowlet switching vs CONGA on
   the cross-leaf all-to-all, same seed, same flows.  Flowlet/CONGA
   re-pins are counted via telemetry.
3. **PFC storm** — the jammed-receiver pause storm: head-of-line
   blocking must slow the fabric (visible as rtx/RTO recovery work) but
   never deadlock it.
"""

from conftest import run_figure
from repro.core.ppt import Ppt
from repro.experiments.runner import run
from repro.experiments.scenarios import (
    all_to_all_scenario,
    incast_scenario,
    lossless_fabric,
    lossless_scenario,
    pfc_storm_scenario,
)
from repro.transport.dcqcn import Dcqcn
from repro.transport.dctcp import Dctcp
from repro.transport.hpcc import Hpcc
from repro.workloads.distributions import WEB_SEARCH

N_FLOWS = 120
INCAST_LOAD = 0.9


def _total_drops(network):
    return sum(p.mux.stats.dropped for p in network.ports)


def _pfc_counters(network):
    drops = sum(p.mux.pfc.lossless_drops for p in network.ports
                if p.mux.pfc is not None)
    pauses = sum(p.pauses_received for p in network.ports)
    return drops, pauses


def _lossless_rows():
    rows = []
    for scheme_factory in (Dcqcn, Hpcc):
        for pfc in (False, True):
            scheme = scheme_factory()
            if pfc:
                scenario = lossless_scenario(
                    f"ext-{scheme.name}-pfc", n_flows=N_FLOWS,
                    load=INCAST_LOAD)
            else:
                scenario = incast_scenario(
                    f"ext-{scheme.name}-lossy", WEB_SEARCH, n_senders=12,
                    load=INCAST_LOAD, n_flows=N_FLOWS,
                    fabric=lossless_fabric(), seed=11, max_time=20.0)
            result = run(scheme, scenario)
            net = result.topology.network
            lossless_drops, pauses = (_pfc_counters(net) if pfc else (0, 0))
            rows.append({
                "scheme": scheme.name,
                "mode": "pfc" if pfc else "lossy",
                "completed": f"{result.completed}/{len(result.flows)}",
                "drops": _total_drops(result.topology.network),
                "lossless_drops": lossless_drops,
                "pauses": pauses,
                "overall_avg_ms": result.stats.overall_avg * 1e3,
                "small_p99_ms": result.stats.small_p99 * 1e3,
            })
    return rows


def _lb_rows():
    rows = []
    for lb in ("ecmp", "flowlet", "conga"):
        for scheme in (Dctcp(), Ppt()):
            scenario = all_to_all_scenario(
                f"ext-lb-{lb}-{scheme.name}", WEB_SEARCH, load=0.7,
                n_flows=N_FLOWS, lb=lb)
            result = run(scheme, scenario, observe=True)
            summary = result.telemetry.summary()
            rows.append({
                "scheme": scheme.name,
                "mode": lb,
                "completed": f"{result.completed}/{len(result.flows)}",
                "drops": _total_drops(result.topology.network),
                "lossless_drops": 0,
                "pauses": 0,
                "repins": summary.flowlet_repins,
                "overall_avg_ms": result.stats.overall_avg * 1e3,
                "small_p99_ms": result.stats.small_p99 * 1e3,
            })
    return rows


def _storm_row():
    scenario = pfc_storm_scenario("ext-pfc-storm", n_flows=60)
    result = run(Dcqcn(), scenario)
    drops, pauses = _pfc_counters(result.topology.network)
    h = result.health
    return {
        "scheme": "dcqcn",
        "mode": "pfc-storm",
        "completed": f"{h.completed}/{h.n_flows}",
        "drops": _total_drops(result.topology.network),
        "lossless_drops": drops,
        "pauses": pauses,
        "rtx": h.retransmits_total,
        "overall_avg_ms": result.stats.overall_avg * 1e3,
        "_stalled": h.stalled,
    }


def _run_lossless_bench():
    return {"rows": _lossless_rows() + _lb_rows() + [_storm_row()]}


def test_lossless_and_lb(benchmark):
    result = run_figure(benchmark,
                        "Extension: PFC lossless + flowlet/CONGA LB",
                        _run_lossless_bench)
    rows = result["rows"]
    pfc_rows = [r for r in rows if r["mode"] == "pfc"]
    lb_rows = [r for r in rows if r["mode"] in ("flowlet", "conga")]
    storm = next(r for r in rows if r["mode"] == "pfc-storm")

    for row in pfc_rows:
        # the lossless guarantee: pauses fire instead of drops
        assert row["lossless_drops"] == 0, row
        assert row["pauses"] > 0, row
        assert row["drops"] == 0, row
    for row in lb_rows:
        # the balancers must not break completion on a healthy fabric
        completed, total = row["completed"].split("/")
        assert completed == total, row
        if row["mode"] == "flowlet":
            assert row["repins"] >= 0
    # the storm HOL-blocks but the fabric recovers, no deadlock
    assert not storm["_stalled"], storm
    completed, total = storm["completed"].split("/")
    assert completed == total, storm
    assert storm["pauses"] > 0, storm
