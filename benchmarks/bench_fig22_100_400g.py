"""Fig. 22 — the 100G/400G line-rate variant of the large-scale fabric.

Paper shape: PPT keeps the lowest overall average FCT (42.8-84.2%
reductions) and the best large-flow average; at these BDPs small-flow
tails of the proactive schemes get competitive with PPT's (the paper
even reports PPT's tail slightly worse than Homa's/Aeolus's here).
"""

from conftest import by_scheme, run_figure
from repro.experiments.figures import fig22_100_400g


def test_fig22_100_400g(benchmark):
    result = run_figure(benchmark, "Fig 22: 100/400G fabric",
                        fig22_100_400g)
    rows = by_scheme(result["rows"])
    ppt = rows["ppt"]
    others = [r for name, r in rows.items() if name != "ppt"]
    # PPT: lowest overall average of all six schemes
    assert ppt["overall_avg_ms"] <= min(r["overall_avg_ms"] for r in others)
    # and the best large-flow average
    assert ppt["large_avg_ms"] <= min(r["large_avg_ms"] for r in others) * 1.02
    # small-flow tail: within the proactive schemes' ballpark
    assert ppt["small_p99_ms"] <= rows["homa"]["small_p99_ms"] * 1.5
