"""Fig. 16 — PPT without EWD: the LCP loop blasts its window at line
rate every RTT instead of the paced, exponentially-decreasing schedule.

Paper: the overall average is prolonged by 26% and the small avg/tail by
63.5%/85.8% without EWD.  Shape asserted: the ablated variant is worse
overall and on large flows (the blast wastes the LP budget and churns
the shared buffer).
"""

from conftest import by_scheme, run_figure
from repro.experiments.figures import fig16_ablation_ewd


def test_fig16_no_ewd(benchmark):
    result = run_figure(benchmark, "Fig 16: ablation - EWD off",
                        fig16_ablation_ewd)
    rows = by_scheme(result["rows"])
    full, ablated = rows["ppt"], rows["ppt-noewd"]
    assert ablated["overall_avg_ms"] > full["overall_avg_ms"] * 1.02
    assert ablated["large_avg_ms"] > full["large_avg_ms"] * 1.02
    assert ablated["small_avg_ms"] >= full["small_avg_ms"] * 0.95
