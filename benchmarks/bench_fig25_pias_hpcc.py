"""Fig. 25 — PPT vs PIAS and HPCC.

Paper: PPT reduces the overall average FCT by 24.6% vs PIAS (no spare-
bandwidth filling, late demotion) and 4.7% vs HPCC (graceful filling but
no in-network priorities); the tail gap vs HPCC is larger (38.2%).

Shape asserted: PPT <= PIAS and PPT < HPCC overall; PPT's small-flow
tail below HPCC's.  Our PIAS gap is thinner than the paper's 24.6%
(EXPERIMENTS.md) so the PIAS margin is asserted loosely.
"""

from conftest import by_scheme, run_figure
from repro.experiments.figures import fig25_pias_hpcc


def test_fig25_pias_hpcc(benchmark):
    result = run_figure(benchmark, "Fig 25: PIAS and HPCC", fig25_pias_hpcc)
    rows = by_scheme(result["rows"])
    ppt = rows["ppt"]
    assert ppt["overall_avg_ms"] < rows["hpcc"]["overall_avg_ms"]
    assert ppt["overall_avg_ms"] <= rows["pias"]["overall_avg_ms"] * 1.02
    assert ppt["small_p99_ms"] < rows["hpcc"]["small_p99_ms"]
    assert ppt["large_avg_ms"] < rows["hpcc"]["large_avg_ms"]
