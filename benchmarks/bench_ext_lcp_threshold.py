"""§6.3 (sensitivity remark): "PPT has performance benefits under a wide
range of lambda for the low-priority queue."

Sweeps the LCP marking threshold K_low across a 4x range around the
paper's default and checks PPT keeps beating DCTCP on every metric that
matters at each setting — the benefit does not hinge on a tuned K_low.
"""

from conftest import run_figure
from repro.core.ppt import Ppt
from repro.experiments.runner import run
from repro.experiments.scenarios import (
    all_to_all_scenario,
    sim_fabric,
    sim_qcfg,
)
from repro.transport.dctcp import Dctcp
from repro.workloads.distributions import WEB_SEARCH

K_LOW_VALUES = (25_000, 50_000, 86_000, 110_000)  # paper default: 86KB


def _run_sweep():
    rows = []
    # the DCTCP reference doesn't depend on K_low; run it once
    reference = run(Dctcp(), all_to_all_scenario(
        "klow-ref", WEB_SEARCH, load=0.5, n_flows=150))
    rows.append({
        "scheme": "dctcp", "k_low": "n/a",
        "overall_avg_ms": reference.stats.overall_avg * 1e3,
        "small_avg_ms": reference.stats.small_avg * 1e3,
        "small_p99_ms": reference.stats.small_p99 * 1e3,
    })
    for k_low in K_LOW_VALUES:
        fabric = sim_fabric(qcfg=sim_qcfg(k_low=k_low))
        scenario = all_to_all_scenario(f"klow-{k_low}", WEB_SEARCH,
                                       load=0.5, n_flows=150, fabric=fabric)
        result = run(Ppt(), scenario)
        stats = result.stats
        rows.append({
            "scheme": "ppt", "k_low": k_low,
            "overall_avg_ms": stats.overall_avg * 1e3,
            "small_avg_ms": stats.small_avg * 1e3,
            "small_p99_ms": stats.small_p99 * 1e3,
        })
    return {"rows": rows}


def test_lcp_threshold_robustness(benchmark):
    result = run_figure(benchmark, "§6.3: K_low robustness sweep",
                        _run_sweep)
    dctcp = next(r for r in result["rows"] if r["scheme"] == "dctcp")
    ppt_rows = [r for r in result["rows"] if r["scheme"] == "ppt"]
    assert len(ppt_rows) == len(K_LOW_VALUES)
    for row in ppt_rows:
        assert row["overall_avg_ms"] < dctcp["overall_avg_ms"], row["k_low"]
        assert row["small_avg_ms"] < dctcp["small_avg_ms"], row["k_low"]
        assert row["small_p99_ms"] < dctcp["small_p99_ms"], row["k_low"]
    # and the spread across thresholds is modest (robustness)
    overall = [r["overall_avg_ms"] for r in ppt_rows]
    assert max(overall) <= min(overall) * 1.25
