"""Fig. 3 — filling the window gap to different fractions of MW.

Paper: filling to 0.5x MW wastes capacity (+56% FCT); filling beyond MW
bursts and loses packets (up to 6x FCT); 1x MW is the choice.

Shape asserted: the overfill side — FCT grows monotonically beyond 1x MW
on plain tail-drop buffers.  Known deviation: the underfill penalty is
muted at our scale because our DCTCP leaves less capacity unused than
the paper's (see EXPERIMENTS.md).
"""

from conftest import run_figure
from repro.experiments.figures import fig03_fill_factor


def test_fig03_overfill_hurts(benchmark):
    result = run_figure(benchmark, "Fig 3: fill-to-MW sweep",
                        fig03_fill_factor, factors=(0.5, 1.0, 1.5))
    fct = {row["fill_factor"]: row["overall_avg_ms"]
           for row in result["rows"]}
    assert fct[1.5] > fct[1.0] * 1.05   # overfilling bursts and loses
    assert fct[1.5] > fct[0.5] * 1.10   # and is the worst configuration
