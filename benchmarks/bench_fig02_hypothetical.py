"""Fig. 2 — the hypothetical (oracle-filled) DCTCP beats real DCTCP and
Homa on overall average FCT.

Paper: hypothetical DCTCP reduces the overall average FCT by 33% vs Homa
and 40% vs NDP.  Shape asserted: hypothetical < DCTCP and hypothetical <
Homa.  (Our NDP model, with its ideal control path, is stronger than the
paper's — see EXPERIMENTS.md — so the NDP comparison is reported but not
asserted.)
"""

from conftest import by_scheme, run_figure
from repro.experiments.figures import fig02_hypothetical


def test_fig02_hypothetical_beats_dctcp_and_homa(benchmark):
    result = run_figure(benchmark, "Fig 2: hypothetical DCTCP",
                        fig02_hypothetical)
    rows = by_scheme(result["rows"])
    hypo = rows["hypothetical-dctcp"]["overall_avg_ms"]
    assert hypo < rows["dctcp"]["overall_avg_ms"]
    # paper: 33% below Homa; our Homa (ideal grant path) lands at parity,
    # so the Homa comparison is asserted as "no worse"
    assert hypo <= rows["homa"]["overall_avg_ms"] * 1.05
