"""Core DES engine throughput — the repo's events/sec trajectory.

Not a paper figure: this is the perf baseline every hot-path change is
judged against (ROADMAP: "as fast as the hardware allows").  Two probes:

* ``raw-heap`` — interleaved self-rescheduling timer chains, nothing but
  ``schedule``/``run``: the heap push/pop ceiling of the engine itself;
* ``dctcp-incast`` — a 16:1 DCTCP incast through the full datapath
  (ports, priority mux, switch, transport, ACK clocking): the number
  that actually bounds experiment wall time, and the workload the lazy
  RTO-timer change is measured on.

The assertion is deliberately loose (events/sec > 0): wall-clock varies
across machines, so the job *log* carries the number — compare it across
commits, don't gate on it.
"""

import time

from conftest import run_figure
from repro.experiments.runner import run
from repro.experiments.scenarios import incast_scenario
from repro.sim.engine import Simulator
from repro.transport.dctcp import Dctcp
from repro.workloads.distributions import WEB_SEARCH

RAW_EVENTS = 200_000
RAW_CHAINS = 8


def _raw_heap_row():
    sim = Simulator()

    def tick(depth):
        if depth:
            sim.schedule(1e-6, tick, depth - 1)

    for _ in range(RAW_CHAINS):
        sim.schedule(0.0, tick, RAW_EVENTS // RAW_CHAINS)
    t0 = time.perf_counter()
    sim.run()
    elapsed = time.perf_counter() - t0
    return {"bench": "raw-heap", "events": sim.events_run,
            "seconds": elapsed, "events_per_sec": sim.events_run / elapsed}


def _bench_scenario():
    return incast_scenario(
        "bench-core-incast", WEB_SEARCH, n_senders=16, load=0.6,
        n_flows=64, size_cap=500_000, seed=3)


def _incast_row():
    scenario = _bench_scenario()
    t0 = time.perf_counter()
    result = run(Dctcp(), scenario)
    elapsed = time.perf_counter() - t0
    assert result.completed == len(result.flows), "incast must complete"
    return {"bench": "dctcp-incast", "events": result.wall_events,
            "seconds": elapsed,
            "events_per_sec": result.wall_events / elapsed}


def _observed_incast_row():
    """The same incast with repro.obs telemetry attached — its per-slice
    wall-clock profile *is* the events/sec measurement, and comparing
    this row against ``dctcp-incast`` across commits bounds the
    observation overhead (regression budget: <3%)."""
    result = run(Dctcp(), _bench_scenario(), observe=True)
    assert result.completed == len(result.flows), "incast must complete"
    summary = result.telemetry.summary()
    return {"bench": "dctcp-incast-observed", "events": summary.sim_events,
            "seconds": summary.wall_seconds,
            "events_per_sec": summary.events_per_sec}


def _run_bench():
    return {"rows": [_raw_heap_row(), _incast_row(), _observed_incast_row()]}


def test_core_engine_events_per_sec(benchmark):
    result = run_figure(benchmark, "Core engine throughput (events/sec)",
                        _run_bench)
    for row in result["rows"]:
        assert row["events"] > 0
        assert row["events_per_sec"] > 0
