"""Core DES engine throughput — the repo's events/sec trajectory.

Not a paper figure: this is the perf baseline every hot-path change is
judged against (ROADMAP: "as fast as the hardware allows").  Probes:

* ``raw-heap`` — interleaved self-rescheduling timer chains, nothing but
  ``schedule``/``run``: the heap push/pop ceiling of the engine itself;
* ``dctcp-incast`` — a 16:1 DCTCP incast through the full datapath
  (ports, priority mux, switch, transport, ACK clocking): the number
  that actually bounds experiment wall time.  Reported best-of-N to
  damp scheduler noise, with the run's peak heap size (``sim.pending``
  high-water mark) — the pipelined wire keeps this flat where the
  legacy one-event-per-packet model scaled it with in-flight packets;
* ``leaf-spine`` — all-to-all over a 2x2 leaf-spine: multipath ECMP
  forwarding with two switch hops per path, the topology shape the
  validation matrix leans on;
* ``dctcp-incast-observed`` — the incast with repro.obs telemetry
  attached; comparing against ``dctcp-incast`` across commits bounds
  the observation overhead (regression budget: <3%);
* ``hybrid-soak`` — a heavy bulk-transfer scenario run twice, packet
  mode then with the :mod:`repro.sim.hybrid` fast path; records
  simulated flow-hours per wall-second for both and asserts the hybrid
  speedup is at least 10x (the ISSUE's floor; the ratchet then gates
  ``flow_hours_per_sec`` against the checked-in baseline);
* ``sharded-leaf-spine`` — all-to-all over a 1024-host fabric (16
  leaves x 64 hosts, 8 spines) run serially and again space-partitioned
  4 ways (:func:`repro.experiments.distributed.run_sharded`); records
  aggregate events/sec for both plus the machine's usable core count,
  and asserts the sharded run is at least
  ``SHARD_SPEEDUP_FLOOR``x the serial one **only when the machine
  actually has a core per shard** — on smaller boxes the row still
  records the protocol overhead (speedup < 1 is expected there) and the
  ratchet gates the sharded events/sec against the baseline.

Every invocation writes the rows to ``BENCH_core_engine.json`` at the
repo root (override with ``BENCH_CORE_ENGINE_OUT``) so the trajectory
accumulates in version control / CI artifacts.  The in-test assertion
is deliberately loose (events/sec > 0) because wall-clock varies across
machines; the regression gate lives in ``benchmarks/perf_ratchet.py``,
which CI runs against the checked-in baseline with a 25% noise
allowance.
"""

import json
import os
import time
from pathlib import Path

from conftest import run_figure
from repro.experiments.distributed import run_sharded
from repro.experiments.runner import Scenario, run
from repro.experiments.scenarios import (
    all_to_all_scenario,
    incast_scenario,
    sim_config,
    sim_fabric,
    star_fabric,
)
from repro.sim.engine import Simulator
from repro.sim.hybrid import HybridConfig
from repro.transport.base import Flow
from repro.transport.dctcp import Dctcp
from repro.units import gbps, us
from repro.workloads.distributions import WEB_SEARCH

RAW_EVENTS = 200_000
RAW_CHAINS = 8
INCAST_REPEATS = 3
HYBRID_BULK_FLOWS = 24
HYBRID_BULK_SIZE = 4_000_000
HYBRID_SPEEDUP_FLOOR = 10.0
SHARD_N = 4
SHARD_FLOWS = 1500
SHARD_SPEEDUP_FLOOR = 2.5

OUT_PATH = Path(os.environ.get(
    "BENCH_CORE_ENGINE_OUT",
    Path(__file__).resolve().parent.parent / "BENCH_core_engine.json"))


def _raw_heap_row():
    sim = Simulator()

    def tick(depth):
        if depth:
            sim.schedule(1e-6, tick, depth - 1)

    for _ in range(RAW_CHAINS):
        sim.schedule(0.0, tick, RAW_EVENTS // RAW_CHAINS)
    t0 = time.perf_counter()
    sim.run()
    elapsed = time.perf_counter() - t0
    return {"bench": "raw-heap", "events": sim.events_run,
            "seconds": elapsed, "events_per_sec": sim.events_run / elapsed,
            "peak_pending": sim.peak_pending}


def _bench_scenario():
    return incast_scenario(
        "bench-core-incast", WEB_SEARCH, n_senders=16, load=0.6,
        n_flows=64, size_cap=500_000, seed=3)


def _incast_row():
    best = None
    for _ in range(INCAST_REPEATS):
        scenario = _bench_scenario()
        t0 = time.perf_counter()
        result = run(Dctcp(), scenario)
        elapsed = time.perf_counter() - t0
        assert result.completed == len(result.flows), "incast must complete"
        if best is None or elapsed < best[0]:
            best = (elapsed, result)
    elapsed, result = best
    return {"bench": "dctcp-incast", "events": result.wall_events,
            "seconds": elapsed,
            "events_per_sec": result.wall_events / elapsed,
            "peak_pending": result.health.peak_pending}


def _leaf_spine_row():
    scenario = all_to_all_scenario(
        "bench-core-leaf-spine", WEB_SEARCH, n_flows=48,
        fabric=sim_fabric(n_leaf=2, n_spine=2, hosts_per_leaf=4), seed=5)
    t0 = time.perf_counter()
    result = run(Dctcp(), scenario)
    elapsed = time.perf_counter() - t0
    assert result.completed == len(result.flows), "leaf-spine must complete"
    return {"bench": "leaf-spine", "events": result.wall_events,
            "seconds": elapsed,
            "events_per_sec": result.wall_events / elapsed,
            "peak_pending": result.health.peak_pending}


def _observed_incast_row():
    result = run(Dctcp(), _bench_scenario(), observe=True)
    assert result.completed == len(result.flows), "incast must complete"
    summary = result.telemetry.summary()
    return {"bench": "dctcp-incast-observed", "events": summary.sim_events,
            "seconds": summary.wall_seconds,
            "events_per_sec": summary.events_per_sec,
            "peak_pending": result.health.peak_pending}


def _hybrid_scenario(hybrid):
    """Heavy bulk traffic on a slow star: every flow is a multi-second
    transfer, which is exactly the event population the flow-level fast
    path exists to elide."""
    fabric = star_fabric(6, rate=gbps(0.1))

    def build_flows(topo):
        hosts = topo.host_ids()
        n = len(hosts)
        flows = []
        for i in range(HYBRID_BULK_FLOWS):
            src = hosts[i % n]
            dst = hosts[(i + 1 + i // n) % n]
            flows.append(Flow(flow_id=i, src=src, dst=dst,
                              size=HYBRID_BULK_SIZE,
                              start_time=0.001 * i))
        return flows

    # slow links: scale RTOmin past serialization like the soak scenario
    return Scenario("bench-hybrid-soak", fabric, build_flows,
                    config=sim_config(min_rto=0.05), max_time=120.0,
                    hybrid=hybrid)


def _flow_hours(result):
    return sum(f.fct for f in result.flows if f.fct is not None) / 3600.0


def _hybrid_row():
    t0 = time.perf_counter()
    packet = run(Dctcp(), _hybrid_scenario(None))
    packet_wall = time.perf_counter() - t0
    assert packet.completed == len(packet.flows), "packet soak must complete"

    t0 = time.perf_counter()
    hybrid = run(Dctcp(), _hybrid_scenario(HybridConfig()))
    hybrid_wall = time.perf_counter() - t0
    assert hybrid.completed == len(hybrid.flows), "hybrid soak must complete"

    packet_fhps = _flow_hours(packet) / packet_wall
    hybrid_fhps = _flow_hours(hybrid) / hybrid_wall
    speedup = hybrid_fhps / packet_fhps if packet_fhps else float("inf")
    return {"bench": "hybrid-soak", "events": hybrid.wall_events,
            "seconds": hybrid_wall,
            "events_per_sec": hybrid.wall_events / hybrid_wall,
            "peak_pending": hybrid.health.peak_pending,
            "flow_hours_per_sec": hybrid_fhps,
            "packet_flow_hours_per_sec": packet_fhps,
            "speedup": speedup}


def _usable_cores():
    try:
        return len(os.sched_getaffinity(0))
    except (AttributeError, OSError):
        return os.cpu_count() or 1


def _sharded_scenario():
    return all_to_all_scenario(
        "bench-sharded-leaf-spine", WEB_SEARCH, load=0.4,
        n_flows=SHARD_FLOWS,
        fabric=sim_fabric(n_leaf=16, n_spine=8, hosts_per_leaf=64,
                          prop_delay=us(20)),
        seed=9, max_time=5.0)


def _sharded_row():
    t0 = time.perf_counter()
    serial = run(Dctcp(), _sharded_scenario())
    serial_wall = time.perf_counter() - t0
    assert serial.completed == len(serial.flows), "serial oracle must complete"

    t0 = time.perf_counter()
    sharded = run_sharded(Dctcp(), _sharded_scenario(), SHARD_N)
    sharded_wall = time.perf_counter() - t0
    assert sharded.health.completed == sharded.summary.n_flows, \
        "sharded run must complete"

    serial_eps = serial.wall_events / serial_wall
    sharded_eps = sharded.health.events_run / sharded_wall
    return {"bench": "sharded-leaf-spine",
            "events": sharded.health.events_run,
            "seconds": sharded_wall,
            "events_per_sec": sharded_eps,
            "peak_pending": sharded.health.peak_pending,
            "serial_events_per_sec": serial_eps,
            "shards": SHARD_N,
            "cores": _usable_cores(),
            "speedup": sharded_eps / serial_eps}


def _run_bench():
    rows = [_raw_heap_row(), _incast_row(), _leaf_spine_row(),
            _observed_incast_row(), _hybrid_row(), _sharded_row()]
    payload = {"bench": "core_engine", "rows": rows}
    OUT_PATH.parent.mkdir(parents=True, exist_ok=True)
    OUT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    return payload


def test_core_engine_events_per_sec(benchmark):
    result = run_figure(benchmark, "Core engine throughput (events/sec)",
                        _run_bench)
    for row in result["rows"]:
        assert row["events"] > 0
        assert row["events_per_sec"] > 0
        if row["bench"] == "hybrid-soak":
            assert row["speedup"] >= HYBRID_SPEEDUP_FLOOR, (
                f"hybrid fast path delivered only {row['speedup']:.1f}x "
                f"simulated flow-hours per wall-second over packet mode "
                f"(floor {HYBRID_SPEEDUP_FLOOR:g}x)")
        if row["bench"] == "sharded-leaf-spine" and row["cores"] >= SHARD_N:
            # the scaling assertion only means something with a core per
            # shard; on smaller machines the row still records overhead
            assert row["speedup"] >= SHARD_SPEEDUP_FLOOR, (
                f"{SHARD_N}-way sharding delivered only "
                f"{row['speedup']:.2f}x aggregate events/sec over serial "
                f"on a {row['cores']}-core machine "
                f"(floor {SHARD_SPEEDUP_FLOOR:g}x)")
    assert OUT_PATH.exists()
