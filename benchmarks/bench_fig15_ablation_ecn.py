"""Fig. 15 — PPT without ECN for the LCP loop.

Paper: disabling LCP ECN slows the overall average by 18.9% and the
small avg/tail by 59.6%/78.4% — the loop only senses congestion after
loss and keeps injecting.

Known deviation: under our commodity dynamic-threshold buffers the
fabric itself already stops a blind LCP (DT drops opportunistic excess
before it can harm normal traffic), so the no-ECN penalty is muted; the
shape asserted is therefore only "no better than the full design" with
the rows reported for comparison (see EXPERIMENTS.md).
"""

from conftest import by_scheme, run_figure
from repro.experiments.figures import fig15_ablation_lcp_ecn


def test_fig15_no_lcp_ecn(benchmark):
    result = run_figure(benchmark, "Fig 15: ablation - LCP ECN off",
                        fig15_ablation_lcp_ecn)
    rows = by_scheme(result["rows"])
    full, ablated = rows["ppt"], rows["ppt-noecn"]
    assert ablated["overall_avg_ms"] >= full["overall_avg_ms"] * 0.97
    assert ablated["small_p99_ms"] >= full["small_p99_ms"] * 0.95
