"""Appendix F / Fig. 29 — transfer efficiency (received / sent bytes)
under different ECN marking thresholds.

Paper: PPT's efficiency is comparable to DCTCP's and 14.6-18.4% higher
than RC3's; RC3's *low-priority* efficiency is ~50% below PPT's — its LP
flood is mostly dropped and the primary loop refills the holes.

Shape asserted: efficiency(DCTCP) >= efficiency(PPT) > efficiency(RC3),
and at the higher threshold PPT's LP efficiency beats RC3's.
"""

from conftest import run_figure
from repro.experiments.figures import fig29_transfer_efficiency


def test_fig29_transfer_efficiency(benchmark):
    result = run_figure(benchmark, "Fig 29: transfer efficiency",
                        fig29_transfer_efficiency)
    data = {(r["scheme"], r["ecn_fraction"]): r for r in result["rows"]}
    fractions = sorted({r["ecn_fraction"] for r in result["rows"]})
    for fraction in fractions:
        dctcp = data[("dctcp", fraction)]["overall_efficiency"]
        rc3 = data[("rc3", fraction)]["overall_efficiency"]
        ppt = data[("ppt", fraction)]["overall_efficiency"]
        assert dctcp >= ppt * 0.98
        assert ppt > rc3
    high = max(fractions)
    assert (data[("ppt", high)]["lp_efficiency"]
            > data[("rc3", high)]["lp_efficiency"])
