"""Fig. 17 — PPT without flow scheduling (every flow shares one
priority per loop).

Paper: scheduling is worth 26% on the overall average and 66%/51.2% on
the small avg/tail.  Shape asserted: without it, small flows collapse
back to DCTCP-like latencies (multiples worse) and the overall average
degrades.
"""

from conftest import by_scheme, run_figure
from repro.experiments.figures import fig17_ablation_scheduling


def test_fig17_no_scheduling(benchmark):
    result = run_figure(benchmark, "Fig 17: ablation - scheduling off",
                        fig17_ablation_scheduling)
    rows = by_scheme(result["rows"])
    full, ablated = rows["ppt"], rows["ppt-nosched"]
    assert ablated["overall_avg_ms"] > full["overall_avg_ms"] * 1.05
    assert ablated["small_avg_ms"] > full["small_avg_ms"] * 2.0
    assert ablated["small_p99_ms"] > full["small_p99_ms"] * 2.0
