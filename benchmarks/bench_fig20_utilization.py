"""Fig. 20 — PPT's link utilisation tracks the hypothetical DCTCP.

Paper: PPT and the hypothetical DCTCP both hold utilisation near the
ideal 50% while plain DCTCP dips to 25% (PPT's steady-state average is
15% higher than DCTCP's).  Shape asserted: avg(PPT) > avg(DCTCP) and
avg(hypothetical) > avg(DCTCP), with PPT close to the hypothetical.
"""

from conftest import by_scheme, run_figure
from repro.experiments.figures import fig20_link_utilization


def test_fig20_ppt_fills_the_gap(benchmark):
    result = run_figure(benchmark, "Fig 20: utilisation PPT vs DCTCP",
                        fig20_link_utilization)
    rows = by_scheme(result["rows"])
    dctcp = rows["dctcp"]["avg_utilization"]
    hypo = rows["hypothetical"]["avg_utilization"]
    ppt = rows["ppt"]["avg_utilization"]
    assert ppt > dctcp
    assert hypo > dctcp
    # PPT approximates the oracle: within 15% of its average utilisation
    assert ppt >= hypo * 0.85
