"""Appendix E / Fig. 26 — the non-oversubscribed (proactive-friendly)
topology: 10G edge, 40G core, congestion only at the last hop.

Paper: PPT still achieves the best overall and large-flow average FCTs
(19-85.9% / 11-88% reductions); its small-flow average stays slightly
better than the proactive schemes while its small tail can be up to
37.5% worse than theirs.
"""

from conftest import by_scheme, run_figure
from repro.experiments.figures import fig26_non_oversubscribed


def test_fig26_non_oversubscribed(benchmark):
    result = run_figure(benchmark, "Fig 26: non-oversubscribed fabric",
                        fig26_non_oversubscribed)
    rows = by_scheme(result["rows"])
    ppt = rows["ppt"]
    others = [r for name, r in rows.items() if name != "ppt"]
    assert ppt["overall_avg_ms"] <= min(r["overall_avg_ms"] for r in others)
    assert ppt["large_avg_ms"] <= min(r["large_avg_ms"] for r in others) * 1.05
    # small tail at most modestly worse than the proactive schemes
    # (paper allows up to 37.5% worse)
    proactive_tail = min(rows[s]["small_p99_ms"]
                         for s in ("ndp", "aeolus", "homa"))
    assert ppt["small_p99_ms"] <= proactive_tail * 1.4
