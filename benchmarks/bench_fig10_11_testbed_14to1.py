"""Figs. 10/11 — testbed 14-to-1 incast FCT statistics.

Paper shape: PPT delivers the lowest overall average FCT; RC3's
low-priority flood collapses under incast (its small-flow tail is even
worse than DCTCP's in some cases); PPT's small flows stay protected.
"""

import pytest

from conftest import by_scheme, run_figure
from repro.experiments.figures import fig10_11_testbed_14to1


@pytest.mark.parametrize("workload", ["web-search", "data-mining"])
def test_fig10_11_testbed_14to1(benchmark, workload):
    result = run_figure(benchmark, f"Figs 10/11: 14-to-1 incast ({workload})",
                        fig10_11_testbed_14to1, workload=workload)
    rows = by_scheme(result["rows"])
    ppt = rows["ppt"]
    assert ppt["overall_avg_ms"] < rows["dctcp"]["overall_avg_ms"]
    assert ppt["overall_avg_ms"] < rows["homa"]["overall_avg_ms"]
    assert ppt["small_avg_ms"] < rows["dctcp"]["small_avg_ms"]
    assert ppt["small_avg_ms"] < rows["rc3"]["small_avg_ms"]
    assert ppt["small_p99_ms"] < rows["dctcp"]["small_p99_ms"]
    # large flows are not starved: within 15% of the best large-flow avg
    best_large = min(r["large_avg_ms"] for r in rows.values())
    assert ppt["large_avg_ms"] <= best_large * 1.15
