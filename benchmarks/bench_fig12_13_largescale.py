"""Figs. 12/13 — the large-scale six-scheme comparison on the
oversubscribed 40/100G fabric (web search & data mining).

Paper shape: PPT achieves the lowest overall average FCT of all tested
schemes (reductions of 38.5-87.5% on web search); its small-flow tail is
far below RC3's and DCTCP's; its large flows are never starved.

Known deviation (EXPERIMENTS.md): our NDP — ideal control path, perfect
per-packet spraying — is stronger than the paper's, so PPT-vs-NDP is
reported but only PPT-vs-{Homa, RC3, DCTCP, Aeolus} is asserted.
"""

import pytest

from conftest import by_scheme, run_figure
from repro.experiments.figures import fig12_13_largescale


@pytest.mark.parametrize("workload", ["web-search", "data-mining"])
def test_fig12_13_largescale(benchmark, workload):
    result = run_figure(benchmark, f"Figs 12/13: large-scale ({workload})",
                        fig12_13_largescale, workload=workload)
    rows = by_scheme(result["rows"])
    ppt = rows["ppt"]

    # overall: PPT beats the reactive baselines outright and stays at or
    # below Homa/Aeolus (paper: strictly below; our Homa's ideal grant
    # path makes it a tougher target on data mining — EXPERIMENTS.md)
    assert ppt["overall_avg_ms"] < rows["rc3"]["overall_avg_ms"]
    assert ppt["overall_avg_ms"] < rows["dctcp"]["overall_avg_ms"]
    assert ppt["overall_avg_ms"] <= rows["homa"]["overall_avg_ms"] * 1.10
    assert ppt["overall_avg_ms"] <= rows["aeolus"]["overall_avg_ms"] * 1.10

    # small flows: tail far below RC3/DCTCP (paper: 75-77% lower)
    assert ppt["small_p99_ms"] < rows["rc3"]["small_p99_ms"] / 3
    assert ppt["small_p99_ms"] < rows["dctcp"]["small_p99_ms"] / 3
    assert ppt["small_avg_ms"] < rows["rc3"]["small_avg_ms"]
    assert ppt["small_avg_ms"] < rows["dctcp"]["small_avg_ms"]

    # large flows: no starvation
    assert ppt["large_avg_ms"] < rows["dctcp"]["large_avg_ms"] * 1.02
    assert ppt["large_avg_ms"] < rows["homa"]["large_avg_ms"] * 1.10
