"""Extension: seed robustness of the headline result.

Every figure in the suite runs one seeded realisation; this benchmark
replays the Fig-12 web-search comparison over three independent seeds
and checks the headline ordering — PPT below DCTCP and RC3 on the
overall average, and far below both on the small-flow tail — holds for
every one of them, i.e. the reproduction is not a single-seed artefact.
"""

from conftest import run_figure
from repro.core.ppt import Ppt
from repro.experiments.runner import run
from repro.experiments.scenarios import all_to_all_scenario
from repro.transport.dctcp import Dctcp
from repro.transport.rc3 import Rc3
from repro.workloads.distributions import WEB_SEARCH

SEEDS = (7, 23, 101)


def _run_seeds():
    rows = []
    for seed in SEEDS:
        scenario = all_to_all_scenario(f"seed-{seed}", WEB_SEARCH, load=0.5,
                                       n_flows=150, seed=seed)
        for scheme in (Dctcp(), Rc3(), Ppt()):
            result = run(scheme, scenario)
            stats = result.stats
            rows.append({
                "seed": seed,
                "scheme": scheme.name,
                "overall_avg_ms": stats.overall_avg * 1e3,
                "small_avg_ms": stats.small_avg * 1e3,
                "small_p99_ms": stats.small_p99 * 1e3,
                "completed": result.completed,
            })
    return {"rows": rows}


def test_headline_holds_across_seeds(benchmark):
    result = run_figure(benchmark, "Extension: seed stability",
                        _run_seeds)
    data = {(r["seed"], r["scheme"]): r for r in result["rows"]}
    assert all(r["completed"] == 150 for r in result["rows"])
    for seed in SEEDS:
        ppt = data[(seed, "ppt")]
        for other in ("dctcp", "rc3"):
            base = data[(seed, other)]
            assert ppt["overall_avg_ms"] < base["overall_avg_ms"], (
                f"seed={seed} vs {other}")
            assert ppt["small_avg_ms"] < base["small_avg_ms"]
            assert ppt["small_p99_ms"] < base["small_p99_ms"] / 2
