"""Extension: seed robustness of the headline result.

Every figure in the suite runs one seeded realisation; this benchmark
replays the Fig-12 web-search comparison over three independent seeds
and checks the headline ordering — PPT below DCTCP and RC3 on the
overall average, and far below both on the small-flow tail — holds for
every one of them, i.e. the reproduction is not a single-seed artefact.

The seed × scheme grid runs on the parallel executor
(:mod:`repro.experiments.parallel`) with one worker per core; results
are merged in deterministic grid order, so the table is identical to a
serial run but the wall time is divided by the core count.
"""

from conftest import run_figure
from repro.core.ppt import Ppt
from repro.experiments.parallel import GridTask, run_grid
from repro.experiments.scenarios import all_to_all_scenario
from repro.transport.dctcp import Dctcp
from repro.transport.rc3 import Rc3
from repro.workloads.distributions import WEB_SEARCH

SEEDS = (7, 23, 101)
SCHEMES = {"dctcp": Dctcp, "rc3": Rc3, "ppt": Ppt}


def _make_scenario(seed=7):
    return all_to_all_scenario(f"seed-{seed}", WEB_SEARCH, load=0.5,
                               n_flows=150, seed=seed)


def _run_seeds(jobs=None):
    tasks = [
        GridTask(scheme_factory=factory, scenario_factory=_make_scenario,
                 params={"seed": seed}, label=f"{name} seed={seed}",
                 scheme_key=name)
        for seed in SEEDS
        for name, factory in SCHEMES.items()
    ]
    rows = []
    for summary in run_grid(tasks, jobs=jobs):
        stats = summary.stats
        rows.append({
            "seed": summary.params["seed"],
            "scheme": summary.scheme,
            "overall_avg_ms": stats.overall_avg * 1e3,
            "small_avg_ms": stats.small_avg * 1e3,
            "small_p99_ms": stats.small_p99 * 1e3,
            "completed": summary.completed,
        })
    return {"rows": rows}


def test_headline_holds_across_seeds(benchmark):
    result = run_figure(benchmark, "Extension: seed stability",
                        _run_seeds, jobs=-1)
    data = {(r["seed"], r["scheme"]): r for r in result["rows"]}
    assert all(r["completed"] == 150 for r in result["rows"])
    for seed in SEEDS:
        ppt = data[(seed, "ppt")]
        for other in ("dctcp", "rc3"):
            base = data[(seed, other)]
            assert ppt["overall_avg_ms"] < base["overall_avg_ms"], (
                f"seed={seed} vs {other}")
            assert ppt["small_avg_ms"] < base["small_avg_ms"]
            assert ppt["small_p99_ms"] < base["small_p99_ms"] / 2
