"""Figs. 8/9 — testbed 15-to-15 FCT statistics (web search & data
mining), on the CloudLab-testbed stand-in (15 hosts, 10G star, RTOmin
10ms, Table 3 settings).

Paper shape: PPT has the lowest overall average FCT at every load for
both workloads, and dramatically better small-flow average/tail than RC3
and DCTCP.
"""

import pytest

from conftest import run_figure
from repro.experiments.figures import fig08_09_testbed_15to15


@pytest.mark.parametrize("workload", ["web-search", "data-mining"])
def test_fig08_09_testbed_15to15(benchmark, workload):
    result = run_figure(benchmark, f"Figs 8/9: 15-to-15 testbed ({workload})",
                        fig08_09_testbed_15to15, workload=workload)
    by_load = {}
    for row in result["rows"]:
        by_load.setdefault(row["load"], {})[row["scheme"]] = row
    for load, rows in by_load.items():
        ppt = rows["ppt"]
        for other in ("homa", "rc3", "dctcp"):
            assert ppt["overall_avg_ms"] < rows[other]["overall_avg_ms"], (
                f"load={load}: ppt vs {other}")
        # small flows: far better than the reactive baselines
        for other in ("rc3", "dctcp"):
            assert ppt["small_avg_ms"] < rows[other]["small_avg_ms"]
            assert ppt["small_p99_ms"] < rows[other]["small_p99_ms"]
        # and no worse than Homa-Linux (whose GRO batching taxes smalls);
        # the paper's "up to 84.5%/96.8%" reductions are best-case, so
        # the tail is asserted with a modest band
        assert ppt["small_avg_ms"] <= rows["homa"]["small_avg_ms"] * 1.02
        assert ppt["small_p99_ms"] <= rows["homa"]["small_p99_ms"] * 1.35
