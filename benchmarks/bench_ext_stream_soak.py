"""Extension: multi-million-flow streamed soak — flat RSS, clean audit.

Two gates on the streaming traffic generator
(:mod:`repro.workloads.streams`):

1. **Flat memory at scale** — drain a two-million-flow tenant-mix
   stream end to end and sample the process RSS along the way.  The
   stream holds one look-ahead flow per source, so resident memory must
   stay flat no matter how many flows pass through; the materialized
   equivalent would hold ~hundreds of MB of ``Flow`` objects.
2. **Validated streamed soak** — run the long-horizon soak scenario
   from a stream under the invariant auditor and require zero
   violations and full completion, i.e. lazy flow injection is
   invisible to the transport machinery.

The soak horizon scales with ``STREAM_SOAK_HORIZON`` (simulated
seconds, default 600 for CI smoke); the acceptance-scale run is a
manual ``STREAM_SOAK_HORIZON=86400`` session.  The 2M-flow generation
gate always runs at full scale — it costs seconds.
"""

import os

from repro.experiments.runner import run
from repro.experiments.scenarios import soak_scenario
from repro.transport.dctcp import Dctcp
from repro.units import gbps
from repro.workloads import TenantClass, tenant_mix_stream
from repro.workloads.distributions import MEMCACHED_W1, WEB_SEARCH
from repro.workloads.patterns import all_to_all

N_FLOWS = 2_000_000
RSS_SAMPLES = 8
# generous: covers allocator noise and RNG/heap churn, while a
# materialized 2M-flow list would blow through it 5-10x over
MAX_RSS_GROWTH_MB = 64

SOAK_HORIZON = float(os.environ.get("STREAM_SOAK_HORIZON", "600"))


def _rss_mb() -> float:
    with open("/proc/self/statm") as fh:
        pages = int(fh.read().split()[1])
    return pages * os.sysconf("SC_PAGE_SIZE") / 1e6


def _drain_with_rss(stream, n_flows):
    """Drain ``stream`` fully, sampling RSS at regular intervals."""
    samples = []
    step = n_flows // RSS_SAMPLES
    count = 0
    for _ in stream:
        count += 1
        if count % step == 0:
            samples.append(_rss_mb())
    return count, samples


def _build_two_million_stream():
    mix = [TenantClass("memcached-w1", MEMCACHED_W1, 3.0),
           TenantClass("web-search", WEB_SEARCH, 1.0, size_cap=1_000_000)]
    return tenant_mix_stream(mix, all_to_all(range(16)), load=0.5,
                             link_rate=gbps(40), n_flows=N_FLOWS,
                             n_senders=16, seed=1)


def test_two_million_flow_stream_rss_flat(benchmark):
    def drain():
        return _drain_with_rss(_build_two_million_stream(), N_FLOWS)

    count, samples = benchmark.pedantic(drain, rounds=1, iterations=1)
    assert count == N_FLOWS
    growth = max(samples) - samples[0]
    print(f"\n=== Extension: 2M-flow stream RSS ===")
    print(f"rss samples (MB): {[f'{s:.1f}' for s in samples]}")
    print(f"growth after first sample: {growth:.1f}MB")
    assert growth < MAX_RSS_GROWTH_MB, (
        f"stream drain RSS grew {growth:.1f}MB over {N_FLOWS} flows — "
        f"the generator is accumulating flows")


def test_validated_streamed_soak_clean(benchmark):
    def soak():
        scenario = soak_scenario("stream-soak", horizon=SOAK_HORIZON,
                                 stream=True)
        return run(Dctcp(), scenario, validate=True)

    result = benchmark.pedantic(soak, rounds=1, iterations=1)
    print(f"\n=== Extension: validated streamed soak "
          f"(horizon={SOAK_HORIZON:g}s) ===")
    print(f"flows: {result.completed}/{result.health.n_flows}  "
          f"events: {result.wall_events}  "
          f"validation: {result.validation.describe()}")
    assert result.validation.ok, result.validation.describe()
    assert result.completed == result.health.n_flows
    assert not result.health.stalled
