"""Extension: multi-million-flow streamed soak — flat RSS, clean audit.

Two gates on the streaming traffic generator
(:mod:`repro.workloads.streams`):

1. **Flat memory at scale** — drain a two-million-flow tenant-mix
   stream end to end and sample the process RSS along the way.  The
   stream holds one look-ahead flow per source, so resident memory must
   stay flat no matter how many flows pass through; the materialized
   equivalent would hold ~hundreds of MB of ``Flow`` objects.
2. **Validated streamed soak** — run the long-horizon soak scenario
   from a stream under the invariant auditor and require zero
   violations and full completion, i.e. lazy flow injection is
   invisible to the transport machinery.

The soak horizon scales with ``STREAM_SOAK_HORIZON`` (simulated
seconds, default 600 for CI smoke); the acceptance-scale run is a
manual ``STREAM_SOAK_HORIZON=86400`` session.  The 2M-flow generation
gate always runs at full scale — it costs seconds.
"""

import os
import tracemalloc

from repro.experiments.runner import run
from repro.experiments.scenarios import soak_scenario
from repro.sim.engine import Simulator
from repro.sim.link import Port
from repro.sim.packet import Packet
from repro.sim.queues import PriorityMux
from repro.sim.routing import make_balancer
from repro.sim.switch import Switch
from repro.transport.dctcp import Dctcp
from repro.units import gbps
from repro.workloads import TenantClass, tenant_mix_stream
from repro.workloads.distributions import MEMCACHED_W1, WEB_SEARCH
from repro.workloads.patterns import all_to_all

N_FLOWS = 2_000_000
RSS_SAMPLES = 8
# generous: covers allocator noise and RNG/heap churn, while a
# materialized 2M-flow list would blow through it 5-10x over
MAX_RSS_GROWTH_MB = 64

SOAK_HORIZON = float(os.environ.get("STREAM_SOAK_HORIZON", "600"))


def _rss_mb() -> float:
    with open("/proc/self/statm") as fh:
        pages = int(fh.read().split()[1])
    return pages * os.sysconf("SC_PAGE_SIZE") / 1e6


def _drain_with_rss(stream, n_flows):
    """Drain ``stream`` fully, sampling RSS at regular intervals."""
    samples = []
    step = n_flows // RSS_SAMPLES
    count = 0
    for _ in stream:
        count += 1
        if count % step == 0:
            samples.append(_rss_mb())
    return count, samples


def _build_two_million_stream():
    mix = [TenantClass("memcached-w1", MEMCACHED_W1, 3.0),
           TenantClass("web-search", WEB_SEARCH, 1.0, size_cap=1_000_000)]
    return tenant_mix_stream(mix, all_to_all(range(16)), load=0.5,
                             link_rate=gbps(40), n_flows=N_FLOWS,
                             n_senders=16, seed=1)


def test_two_million_flow_stream_rss_flat(benchmark):
    def drain():
        return _drain_with_rss(_build_two_million_stream(), N_FLOWS)

    count, samples = benchmark.pedantic(drain, rounds=1, iterations=1)
    assert count == N_FLOWS
    growth = max(samples) - samples[0]
    print(f"\n=== Extension: 2M-flow stream RSS ===")
    print(f"rss samples (MB): {[f'{s:.1f}' for s in samples]}")
    print(f"growth after first sample: {growth:.1f}MB")
    assert growth < MAX_RSS_GROWTH_MB, (
        f"stream drain RSS grew {growth:.1f}MB over {N_FLOWS} flows — "
        f"the generator is accumulating flows")


N_SWITCH_FLOWS = 200_000
# per-flow ECMP and spray hold ZERO per-flow switch state after the
# unbounded `_ecmp_cache` removal; the allowance covers counter churn
MAX_SWITCH_GROWTH_KB = 64
# a flowlet balancer holds state only for flows seen within one idle
# gap (the lazy sweep evicts the rest) — bounded by the active window,
# not the flow count; an unbounded table would hold ~40MB here
MAX_FLOWLET_GROWTH_KB = 512


def _forwarding_harness():
    """A switch with two equal-cost output ports, held non-draining.

    Both ports are pinned ``busy`` so :meth:`Switch.receive` exercises
    exactly the selection + enqueue path without scheduling transmit
    events; the tiny shared buffers fill once and then every packet
    drops, so all growth measured is *switch/balancer* state.
    """
    sim = Simulator()
    switch = Switch(0)
    for i in range(2):
        mux = PriorityMux(buffer_bytes=10_000)
        port = Port(sim, gbps(40), 1e-6, mux, name=f"out{i}")
        port.busy = True
        switch.add_route(0, port)
    return sim, switch


def _forward_distinct_flows(sim, switch, n_flows):
    for flow_id in range(n_flows):
        sim.now += 1e-6
        switch.receive(Packet(flow_id, src=1, dst=0, seq=0, size=1500))


def _traced_growth_kb(fn) -> float:
    tracemalloc.start()
    try:
        fn()
        before, _ = tracemalloc.get_traced_memory()
        fn()
        after, _ = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return (after - before) / 1e3


def test_switch_state_memory_bounded():
    """Forwarding 200k distinct flows must not grow switch state.

    Regression gate for the unbounded per-flow ``_ecmp_cache``: the
    stateless hash needs no memo, spray wraps its counter modulo a safe
    multiple, and the flowlet balancer's lazy sweep evicts idle flows —
    so none of the three modes may accumulate per-flow memory.
    """
    print("\n=== Extension: switch-state memory over "
          f"{N_SWITCH_FLOWS} distinct flows ===")
    for mode, limit_kb in (("ecmp", MAX_SWITCH_GROWTH_KB),
                           ("spray", MAX_SWITCH_GROWTH_KB),
                           ("flowlet", MAX_FLOWLET_GROWTH_KB)):
        sim, switch = _forwarding_harness()
        if mode == "spray":
            switch.spray = True
        elif mode == "flowlet":
            switch.lb = make_balancer("flowlet")
        growth = _traced_growth_kb(
            lambda: _forward_distinct_flows(sim, switch, N_SWITCH_FLOWS))
        print(f"{mode}: second-pass growth {growth:.1f}KB "
              f"(limit {limit_kb}KB)")
        assert growth < limit_kb * 1.0, (
            f"{mode} switch state grew {growth:.1f}KB over "
            f"{N_SWITCH_FLOWS} flows — per-flow state is accumulating")
        assert switch._spray_counter._value < 720_720


def test_validated_streamed_soak_clean(benchmark):
    def soak():
        scenario = soak_scenario("stream-soak", horizon=SOAK_HORIZON,
                                 stream=True)
        return run(Dctcp(), scenario, validate=True)

    result = benchmark.pedantic(soak, rounds=1, iterations=1)
    print(f"\n=== Extension: validated streamed soak "
          f"(horizon={SOAK_HORIZON:g}s) ===")
    print(f"flows: {result.completed}/{result.health.n_flows}  "
          f"events: {result.wall_events}  "
          f"validation: {result.validation.describe()}")
    assert result.validation.ok, result.validation.describe()
    assert result.completed == result.health.n_flows
    assert not result.health.stalled
