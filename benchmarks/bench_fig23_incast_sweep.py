"""Fig. 23 — overall average FCT under N-to-1 incast (N swept).

Paper: under heavy incast PPT gracefully degrades to DCTCP (little spare
bandwidth for the LCP loop), beats Homa and Aeolus (whose first-RTT
blasts burst the shared downlink), and is comparable to NDP (trimming
keeps queues short).  RC3 is excluded — it cannot sustain heavy incast.
"""

from conftest import run_figure
from repro.experiments.figures import fig23_incast_sweep


def test_fig23_incast_sweep(benchmark):
    result = run_figure(benchmark, "Fig 23: incast ratio sweep",
                        fig23_incast_sweep)
    data = {(r["scheme"], r["incast_ratio"]): r["overall_avg_ms"]
            for r in result["rows"]}
    ratios = sorted({r["incast_ratio"] for r in result["rows"]})
    assert not any(s == "rc3" for s, _ in data)
    for n in ratios:
        # PPT tracks DCTCP (falls back when there is no spare bandwidth)
        assert data[("ppt", n)] <= data[("dctcp", n)] * 1.45, f"N={n}"
    # at the heaviest fan-in PPT is comparable to NDP (the paper's
    # "similar performance with NDP") and no longer pays an LCP tax
    # relative to DCTCP
    heaviest = ratios[-1]
    assert data[("ppt", heaviest)] <= data[("ndp", heaviest)] * 1.2
    assert data[("ppt", heaviest)] <= data[("dctcp", heaviest)]
