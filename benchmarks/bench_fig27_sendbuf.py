"""Appendix F / Fig. 27 — PPT under different TCP send-buffer sizes.

Paper: PPT's small-flow FCTs stay strong even at a 128KB send buffer;
a couple of MB is enough for full performance (2MB already holds most
web-search flows).

Shape asserted: small-flow statistics are insensitive to the buffer
size, and every configuration completes with sane overall FCTs (within
25% of each other).  Known deviation: in our model the 128KB buffer's
overall average is *slightly better* (the tiny buffer window throttles
elephants, acting as extra scheduling), whereas the paper reports it
slightly worse — both effects are small; see EXPERIMENTS.md.
"""

from conftest import run_figure
from repro.experiments.figures import fig27_send_buffer


def test_fig27_send_buffer_sensitivity(benchmark):
    result = run_figure(benchmark, "Fig 27: send-buffer sensitivity",
                        fig27_send_buffer)
    rows = result["rows"]
    assert len(rows) == 3
    small_avgs = [r["small_avg_ms"] for r in rows]
    overall = [r["overall_avg_ms"] for r in rows]
    # small flows insensitive to the send buffer
    assert max(small_avgs) <= min(small_avgs) * 1.5
    # overall within a tight band across three orders of magnitude
    assert max(overall) <= min(overall) * 1.25
