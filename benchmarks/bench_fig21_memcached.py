"""Fig. 21 — the Facebook Memcached W1 workload (all flows <= 100KB,
>70% under 1000 bytes).

Paper: PPT achieves the best average FCT, at least 25% below every other
scheme, and a far better tail than the schemes whose first-RTT behaviour
backfires on all-small workloads (Homa/Aeolus line-rate blasting, RC3's
LP flood).

Shape asserted: PPT has the lowest average; its tail beats Homa, Aeolus,
RC3 and NDP.  (Our DCTCP's tail is competitive with PPT's here — see
EXPERIMENTS.md — so the DCTCP tail is asserted only loosely.)
"""

from conftest import by_scheme, run_figure
from repro.experiments.figures import fig21_memcached


def test_fig21_memcached(benchmark):
    result = run_figure(benchmark, "Fig 21: Memcached W1",
                        fig21_memcached)
    rows = by_scheme(result["rows"])
    ppt = rows["ppt"]
    others = {name: r for name, r in rows.items() if name != "ppt"}
    # lowest average of all schemes
    assert ppt["small_avg_ms"] <= min(r["small_avg_ms"]
                                      for r in others.values())
    # tail: far below the schemes the paper calls out
    for name in ("homa", "aeolus", "rc3", "ndp"):
        assert ppt["small_p99_ms"] < others[name]["small_p99_ms"], name
    assert ppt["small_p99_ms"] <= others["dctcp"]["small_p99_ms"] * 1.3
