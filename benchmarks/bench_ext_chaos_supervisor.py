"""Extension: chaos sweep — SIGKILL workers mid-sweep, recover, merge.

Not a paper figure — this exercises the :mod:`repro.resilience`
supervisor the way a flaky cluster would: a scheme x seed grid runs
under supervision while half the cells SIGKILL their worker process on
the first attempt (the observable signature of an OOM kill or a
preempted node).  The supervisor must detect every death by process
exit, relaunch the cell after backoff, and — because each cell builds
a fresh scenario from its own seeds — produce a merge that is
**bit-identical** to an undisturbed sweep's, at the cost of exactly
one extra attempt per killed cell.
"""

import os
import signal
import tempfile

from conftest import run_figure
from repro.core.ppt import Ppt
from repro.experiments.parallel import run_grid, scheme_grid
from repro.experiments.scenarios import all_to_all_scenario
from repro.resilience import supervise_grid
from repro.transport.dctcp import Dctcp
from repro.workloads.distributions import WEB_SEARCH

N_FLOWS = 60
SEEDS = [1, 2, 3]
KILL_SEEDS = {1, 3}  # cells whose first attempt dies
SCHEMES = {"dctcp": Dctcp, "ppt": Ppt}

_MARKER_DIR = None  # set per run; forked workers inherit it


def _scenario(seed=1):
    return all_to_all_scenario(f"chaos-{seed}", WEB_SEARCH, load=0.5,
                               n_flows=N_FLOWS, size_cap=500_000, seed=seed)


def _chaotic_scenario(seed=1):
    """Like :func:`_scenario`, but the first attempt of a marked cell
    SIGKILLs its own worker before the simulation starts."""
    marker = os.path.join(_MARKER_DIR, f"killed-{seed}")
    if seed in KILL_SEEDS and not os.path.exists(marker):
        open(marker, "w").close()
        os.kill(os.getpid(), signal.SIGKILL)
    return _scenario(seed)


def _fingerprint(summary):
    return (summary.scheme, summary.params["seed"], summary.completed,
            summary.n_flows, summary.wall_events,
            repr(summary.stats.overall_avg), repr(summary.stats.small_p99))


def _run_chaos_sweep():
    global _MARKER_DIR
    variants = [{"seed": s} for s in SEEDS]
    undisturbed = run_grid(scheme_grid(SCHEMES, _scenario, variants), jobs=2)

    with tempfile.TemporaryDirectory() as markers:
        _MARKER_DIR = markers
        tasks = scheme_grid(SCHEMES, _chaotic_scenario, variants)
        outcome = supervise_grid(tasks, jobs=2, task_timeout=300.0,
                                 retries=2, backoff_base=0.05)
        kills_fired = len(os.listdir(markers))

    rows = []
    for plain, survived in zip(undisturbed, outcome.summaries):
        rows.append({
            "scheme": plain.scheme,
            "seed": plain.params["seed"],
            "completed": f"{survived.completed}/{survived.n_flows}"
            if survived else "LOST",
            "killed_once": plain.params["seed"] in KILL_SEEDS,
            "identical": (survived is not None
                          and _fingerprint(survived) == _fingerprint(plain)),
        })
    return {
        "rows": rows,
        "_failed": [f.describe() for f in outcome.failed],
        "_attempts": outcome.attempts_total,
        "_cells": len(outcome.summaries),
        "_kills": kills_fired,
    }


def test_chaos_supervisor(benchmark):
    result = run_figure(benchmark,
                        "Extension: SIGKILL chaos sweep under supervision",
                        _run_chaos_sweep)
    # every marked cell really lost a worker...
    assert result["_kills"] == len(KILL_SEEDS), result["_kills"]
    # ...yet nothing was quarantined: every death was retried to success
    assert result["_failed"] == []
    # one relaunch per killed cell, no more (each scheme re-runs the
    # killed seed's cell once — kills fire per seed marker, so only the
    # first scheme to reach a marked seed dies)
    assert result["_attempts"] == result["_cells"] + result["_kills"]
    # and the recovered merge is bit-identical to the undisturbed sweep
    assert all(row["identical"] for row in result["rows"])
