#!/usr/bin/env python3
"""The paper's full-size §6.2 fabric: 144 hosts, 9 leaves, 4 spines.

Everything else in this repository runs on scaled-down replicas so the
test and benchmark suites finish in minutes; this example shows how to
ask for the real thing.  A pure-Python packet-level simulation of 144
hosts at 40/100G is *slow* — budget minutes per scheme, more with many
flows — so the default keeps the flow count modest.

Run:
    python examples/full_scale.py --flows 100 --schemes ppt dctcp
"""

import argparse
import time

from repro import Dctcp, Ppt, Rc3, format_table, run
from repro.experiments.scenarios import (
    all_to_all_scenario,
    sim_fabric,
    sim_qcfg,
)
from repro.transport import Aeolus, Homa, Ndp
from repro.workloads import WEB_SEARCH

SCHEMES = {
    "ppt": lambda: Ppt(),
    "dctcp": lambda: Dctcp(),
    "rc3": lambda: Rc3(),
    "homa": lambda: Homa(rtt_bytes=45_000),
    "aeolus": lambda: Aeolus(rtt_bytes=45_000),
    "ndp": lambda: Ndp(rtt_bytes=45_000),
}


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--flows", type=int, default=100)
    parser.add_argument("--load", type=float, default=0.5)
    parser.add_argument("--size-cap", type=int, default=2_000_000)
    parser.add_argument("--schemes", nargs="+", default=["ppt", "dctcp"],
                        choices=sorted(SCHEMES))
    args = parser.parse_args()

    fabric = sim_fabric(n_leaf=9, n_spine=4, hosts_per_leaf=16,
                        qcfg=sim_qcfg())
    scenario = all_to_all_scenario(
        "full-scale", WEB_SEARCH, load=args.load, n_flows=args.flows,
        fabric=fabric, size_cap=args.size_cap)

    rows = []
    for name in args.schemes:
        scheme = SCHEMES[name]()
        t0 = time.time()
        print(f"running {name} on 144 hosts ...", flush=True)
        result = run(scheme, scenario)
        stats = result.stats
        rows.append({
            "scheme": name,
            "flows": f"{result.completed}/{len(result.flows)}",
            "overall_avg_ms": stats.overall_avg * 1e3,
            "small_avg_ms": stats.small_avg * 1e3,
            "small_p99_ms": stats.small_p99 * 1e3,
            "large_avg_ms": stats.large_avg * 1e3,
            "wall_s": time.time() - t0,
        })
    print()
    print(format_table(rows))


if __name__ == "__main__":
    main()
