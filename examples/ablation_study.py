#!/usr/bin/env python3
"""PPT component ablations (Figs. 15-18) in one sweep.

Disables each of PPT's four design components in turn — LCP ECN, EWD,
flow scheduling, buffer-aware identification (plus the whole LCP loop) —
and compares FCT statistics against the full design.

Run:
    python examples/ablation_study.py
    python examples/ablation_study.py --load 0.7 --flows 200
"""

import argparse

from repro import Ppt, format_table, run
from repro.experiments.scenarios import all_to_all_scenario
from repro.workloads import WEB_SEARCH

VARIANTS = [
    ("full design", dict()),
    ("no LCP ECN (Fig 15)", dict(lcp_ecn=False)),
    ("no EWD (Fig 16)", dict(ewd=False)),
    ("no scheduling (Fig 17)", dict(scheduling=False)),
    ("no identification (Fig 18)", dict(identification=False)),
    ("no LCP loop at all", dict(lcp_enabled=False)),
]


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--load", type=float, default=0.5)
    parser.add_argument("--flows", type=int, default=150)
    args = parser.parse_args()

    scenario = all_to_all_scenario("ablation", WEB_SEARCH, load=args.load,
                                   n_flows=args.flows)
    rows = []
    for label, flags in VARIANTS:
        result = run(Ppt(**flags), scenario)
        stats = result.stats
        rows.append({
            "variant": label,
            "overall_avg_ms": stats.overall_avg * 1e3,
            "small_avg_ms": stats.small_avg * 1e3,
            "small_p99_ms": stats.small_p99 * 1e3,
            "large_avg_ms": stats.large_avg * 1e3,
        })
        print(f"done: {label}")
    print()
    print(format_table(rows))


if __name__ == "__main__":
    main()
