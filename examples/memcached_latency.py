#!/usr/bin/env python3
"""Memcached (all-small-flows) latency comparison (Fig. 21).

The Facebook Memcached W1 workload: >70% of responses under 1000 bytes,
everything under 100KB.  The paper's finding: proactive transports'
first-RTT behaviour (Homa/Aeolus blasting, NDP waiting) hurts when
*every* flow fits in the first RTT, while PPT schedules small flows at
top priority and fills spare bandwidth gracefully.

Run:
    python examples/memcached_latency.py
    python examples/memcached_latency.py --flows 400
"""

import argparse

from repro import format_table
from repro.experiments.figures import fig21_memcached


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--load", type=float, default=0.5)
    parser.add_argument("--flows", type=int, default=250)
    args = parser.parse_args()

    result = fig21_memcached(load=args.load, n_flows=args.flows)
    rows = [{k: v for k, v in row.items() if k != "large_avg_ms"}
            for row in result["rows"]]  # no large flows in this workload
    print(format_table(rows))

    ppt = next(r for r in rows if r["scheme"] == "ppt")
    others = [r for r in rows if r["scheme"] != "ppt"]
    best_avg = min(r["small_avg_ms"] for r in others)
    best_tail = min(r["small_p99_ms"] for r in others)
    print(f"\nPPT avg {ppt['small_avg_ms']:.3f}ms vs best baseline "
          f"{best_avg:.3f}ms; tail {ppt['small_p99_ms']:.3f}ms vs "
          f"{best_tail:.3f}ms")


if __name__ == "__main__":
    main()
