#!/usr/bin/env python3
"""Link-utilisation traces (Figs. 1 and 20) rendered as text sparklines.

Two senders share one receiver's 40G downlink at 0.5 load.  DCTCP's
utilisation collapses after synchronized window cuts; PPT's LCP loop
backfills the dips, tracking the hypothetical (oracle) DCTCP.

Run:
    python examples/link_utilization.py
"""

from repro import format_table
from repro.experiments.figures import fig20_link_utilization

BARS = " _.-=≡#"


def sparkline(series, lo=0.0, hi=1.0):
    chars = []
    for value in series:
        idx = int((value - lo) / (hi - lo) * (len(BARS) - 1) + 0.5)
        chars.append(BARS[max(0, min(idx, len(BARS) - 1))])
    return "".join(chars)


def main() -> None:
    result = fig20_link_utilization()
    print(format_table(result["rows"]))
    print(f"\nutilisation over time (ideal = {result['ideal']:.0%}):")
    for name in ("dctcp", "hypothetical", "ppt"):
        series = result["series"][name]
        avg = sum(series) / len(series)
        print(f"{name:>13s} |{sparkline(series)}| avg={avg:.2f}")


if __name__ == "__main__":
    main()
