#!/usr/bin/env python3
"""Visualise the dual-loop dynamics of one PPT flow (Fig. 5 style).

A large PPT flow shares a downlink with a competing DCTCP-like flow.
The timeline recorder samples the sender's congestion window, DCTCP's
alpha and the LCP loop's in-flight packets; this script renders them as
ASCII strips so you can watch the sawtooth and the opportunistic windows
slotted into its troughs.

Run:
    python examples/dual_loop_timeline.py
"""

from repro import Flow, TransportConfig, TransportContext
from repro.core.ppt import Ppt, PptReceiver, PptSender
from repro.metrics import SenderTimeline
from repro.sim import star
from repro.sim.network import QueueConfig
from repro.transport.dctcp import Dctcp
from repro.units import gbps, us

BARS = " ._-=+*#"


def strip(values, lo, hi, width=100):
    if hi <= lo:
        hi = lo + 1
    step = max(1, len(values) // width)
    chars = []
    for i in range(0, len(values), step):
        v = values[i]
        idx = int((v - lo) / (hi - lo) * (len(BARS) - 1) + 0.5)
        chars.append(BARS[max(0, min(idx, len(BARS) - 1))])
    return "".join(chars)


def main() -> None:
    qcfg = QueueConfig(buffer_bytes=120_000,
                       ecn_thresholds=[96_000] * 4 + [86_000] * 4)
    topo = star(3, rate=gbps(40), prop_delay=us(4), qcfg=qcfg)
    ctx = TransportContext(topo.sim, topo.network,
                           TransportConfig(min_rto=1e-3))

    flow = Flow(0, 0, 2, 4_000_000, 0.0)
    sender = PptSender(flow, ctx, Ppt())
    receiver = PptReceiver(flow, ctx)
    ctx.network.attach(0, 0, 2, sender, receiver)
    timeline = SenderTimeline(topo.sim, sender, interval=4e-6)
    sender.start()

    # a competing flow creates the congestion that makes alpha move
    Dctcp().start_flow(Flow(1, 1, 2, 4_000_000, 0.0), ctx)
    topo.sim.run(until=5.0)

    cwnd = [s.cwnd for s in timeline.samples]
    alpha = [s.alpha or 0.0 for s in timeline.samples]
    lcp = [float(s.lcp_inflight or 0) for s in timeline.samples]

    print(f"flow completed in {flow.fct * 1e3:.3f}ms; "
          f"{timeline.sawtooth_cuts()} window cuts; "
          f"LCP duty cycle {timeline.lcp_duty_cycle():.0%}; "
          f"{timeline.samples[-1].lcp_loops} LCP loops opened\n")
    print(f"cwnd   (0..{max(cwnd):5.1f}) |{strip(cwnd, 0, max(cwnd))}|")
    print(f"alpha  (0..{max(alpha):5.2f}) |{strip(alpha, 0, max(alpha))}|")
    print(f"LCP-in (0..{max(lcp):5.0f}) |{strip(lcp, 0, max(lcp) or 1)}|")
    print("\nRead: HCP's sawtooth on top; LCP bursts appear where the "
          "sawtooth dips (spare bandwidth) and vanish under congestion.")


if __name__ == "__main__":
    main()
