#!/usr/bin/env python3
"""Quickstart: PPT vs DCTCP on a small web-search workload.

Builds a scaled leaf-spine fabric (32 hosts, 40G/100G), offers Poisson
web-search traffic at 0.5 load, and prints the four FCT statistics the
paper reports for both transports.

Run:
    python examples/quickstart.py
"""

from repro import Dctcp, Ppt, format_table, run
from repro.experiments.scenarios import all_to_all_scenario
from repro.metrics import reduction
from repro.workloads import WEB_SEARCH


def main() -> None:
    scenario = all_to_all_scenario(
        "quickstart", WEB_SEARCH, load=0.5, n_flows=150)

    rows = []
    results = {}
    for scheme in (Dctcp(), Ppt()):
        print(f"running {scheme.name} ...")
        result = run(scheme, scenario)
        results[scheme.name] = result
        stats = result.stats
        rows.append({
            "scheme": scheme.name,
            "flows": f"{result.completed}/{len(result.flows)}",
            "overall_avg_ms": stats.overall_avg * 1e3,
            "small_avg_ms": stats.small_avg * 1e3,
            "small_p99_ms": stats.small_p99 * 1e3,
            "large_avg_ms": stats.large_avg * 1e3,
        })

    print()
    print(format_table(rows))
    print()
    dctcp, ppt = results["dctcp"].stats, results["ppt"].stats
    print(f"PPT reduces the overall average FCT by "
          f"{reduction(dctcp.overall_avg, ppt.overall_avg):.1f}% "
          f"and the small-flow average by "
          f"{reduction(dctcp.small_avg, ppt.small_avg):.1f}% vs DCTCP.")


if __name__ == "__main__":
    main()
