#!/usr/bin/env python3
"""Load sweep: how PPT's advantage evolves as the network load grows.

Uses the generic sweep machinery (`repro.experiments.sweeps`) to run a
scheme grid over loads and optionally archives the rows as JSON for
later diffing.

Run:
    python examples/load_sweep.py
    python examples/load_sweep.py --loads 0.3 0.5 0.7 --out sweep.json
"""

import argparse

from repro import Dctcp, Ppt, Rc3, format_table
from repro.experiments.scenarios import all_to_all_scenario
from repro.experiments.sweeps import load_sweep_variants, points_to_json, sweep
from repro.workloads import WEB_SEARCH


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--loads", type=float, nargs="+",
                        default=[0.3, 0.5, 0.7])
    parser.add_argument("--flows", type=int, default=120)
    parser.add_argument("--out", default=None,
                        help="optional JSON output path")
    args = parser.parse_args()

    def scenario_factory(load):
        return all_to_all_scenario(f"sweep-{load}", WEB_SEARCH, load=load,
                                   n_flows=args.flows)

    points = sweep(
        {"dctcp": Dctcp, "rc3": Rc3, "ppt": Ppt},
        scenario_factory,
        load_sweep_variants(args.loads),
        progress=lambda msg: print(f"running {msg} ..."),
    )
    print()
    print(format_table([p.row() for p in points]))
    if args.out:
        points_to_json(points, args.out,
                       meta={"loads": args.loads, "flows": args.flows})
        print(f"\nsaved {len(points)} rows to {args.out}")


if __name__ == "__main__":
    main()
