#!/usr/bin/env python3
"""The §6.2 large-scale comparison (Fig. 12), runnable at any scale.

Compares PPT against NDP, Aeolus, Homa, RC3 and DCTCP on the
oversubscribed leaf-spine fabric under the web-search workload.

Run:
    python examples/websearch_comparison.py                 # scaled default
    python examples/websearch_comparison.py --load 0.7
    python examples/websearch_comparison.py --flows 300 --workload data-mining
"""

import argparse

from repro import format_table
from repro.experiments.figures import fig12_13_largescale


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--load", type=float, default=0.5,
                        help="network load (default 0.5)")
    parser.add_argument("--flows", type=int, default=150,
                        help="number of flows (default 150)")
    parser.add_argument("--workload", default="web-search",
                        choices=["web-search", "data-mining", "memcached"])
    args = parser.parse_args()

    print(f"workload={args.workload} load={args.load} flows={args.flows}")
    result = fig12_13_largescale(args.workload, load=args.load,
                                 n_flows=args.flows)
    print(format_table(result["rows"]))

    ppt = next(r for r in result["rows"] if r["scheme"] == "ppt")
    best_other = min((r for r in result["rows"] if r["scheme"] != "ppt"),
                     key=lambda r: r["overall_avg_ms"])
    print(f"\nPPT overall avg: {ppt['overall_avg_ms']:.3f}ms; "
          f"best baseline: {best_other['scheme']} "
          f"({best_other['overall_avg_ms']:.3f}ms)")


if __name__ == "__main__":
    main()
