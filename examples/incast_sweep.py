#!/usr/bin/env python3
"""Incast behaviour under increasing fan-in (Fig. 23).

N senders fire web-search responses at one receiver.  The paper's
finding: PPT gracefully degrades to DCTCP (the LCP loop finds no spare
bandwidth under heavy incast and stays quiet), while Homa's and Aeolus's
line-rate pre-credit blasts hurt; NDP's trimming keeps it healthy.

Run:
    python examples/incast_sweep.py
    python examples/incast_sweep.py --ratios 8 16 31 --load 0.6
"""

import argparse

from repro import format_table
from repro.experiments.figures import fig23_incast_sweep


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--ratios", type=int, nargs="+", default=[8, 16, 31],
                        help="incast fan-in degrees to sweep")
    parser.add_argument("--load", type=float, default=0.6)
    parser.add_argument("--flows", type=int, default=100)
    args = parser.parse_args()

    result = fig23_incast_sweep(ratios=tuple(args.ratios), load=args.load,
                                n_flows=args.flows)
    print(format_table(result["rows"]))

    # summarise PPT-vs-DCTCP per ratio (the paper's "falls back" claim)
    by_key = {(r["scheme"], r["incast_ratio"]): r["overall_avg_ms"]
              for r in result["rows"]}
    print()
    for n in args.ratios:
        ppt, dctcp = by_key[("ppt", n)], by_key[("dctcp", n)]
        print(f"N={n:4d}: PPT/DCTCP overall-avg ratio = {ppt / dctcp:.2f}")


if __name__ == "__main__":
    main()
